package serve

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"threading/internal/metrics"
	"threading/internal/sched"
	"threading/internal/tracez"
)

// This file wires the metrics registry to the server: fn-backed
// mirrors of the admission counters, scrape-time reads of the
// executor's scheduler counters, a sampling poller that turns trace
// busy time into per-worker utilization and counter deltas into
// rates, and the stall watchdog. Everything here is construction-time
// or scrape/poll-time work — the request path's only telemetry costs
// are the id mint, one histogram observe, and one sharded counter
// bump in instrumented().

const (
	// internalTraceCapacity sizes the tracer serve creates when
	// metrics are on but the caller supplied none: big enough for
	// utilization sampling over a poll interval, small enough that
	// the per-poll ring snapshot stays cheap.
	internalTraceCapacity = 1 << 10

	// watchdogRingID is the ring the watchdog's stall instants land
	// in — far above any worker id a pool or resolver hands out, so
	// the "watchdog" track never collides with a worker track.
	watchdogRingID = 1 << 16
)

// executorStatser is the optional counter surface of the executors
// (worksteal.Pool, forkjoin.Team, and shard.Resolver all have it).
type executorStatser interface{ Stats() sched.Snapshot }

// initMetrics builds the registry, registers every family, and starts
// the poller and (for runtimes that expose a park surface) the
// watchdog. Called from New before the mux is built.
func (s *Server) initMetrics() {
	r := metrics.New()
	s.registry = r

	r.GaugeFunc("threadserve_queue_depth",
		"Admitted requests currently in flight.",
		func() float64 { return float64(s.depth.Load()) })
	r.GaugeFunc("threadserve_queue_depth_peak",
		"Peak in-flight depth since the last reset (Stats resetPeak).",
		func() float64 { return float64(s.peakDepth.Load()) })
	r.GaugeFunc("threadserve_queue_cap",
		"Admission queue capacity; requests beyond it are shed.",
		func() float64 { return float64(s.cfg.Queue) })

	outcome := func(name string, v *atomic.Int64) {
		r.CounterFunc("threadserve_requests_total",
			"Requests by outcome (accepted, shed, completed, failed, timeout, hedge, hedge_win).",
			v.Load, metrics.Label{Key: "outcome", Value: name})
	}
	outcome("accepted", &s.accepted)
	outcome("shed", &s.shed)
	outcome("completed", &s.completed)
	outcome("failed", &s.failed)
	outcome("timeout", &s.timeouts)
	outcome("hedge", &s.hedges)
	outcome("hedge_win", &s.hedgeWins)

	statser, hasStats := s.exec.(executorStatser)
	if hasStats {
		// One series per scheduler counter, read at scrape time. The
		// field's display name ("failed-steals") becomes the label
		// value unchanged — label values, unlike metric names, may
		// contain dashes.
		schedField := func(name string) func() int64 {
			return func() int64 {
				for _, f := range statser.Stats().Fields() {
					if f.Name == name {
						return f.Value
					}
				}
				return 0
			}
		}
		for _, f := range (sched.Snapshot{}).Fields() {
			r.CounterFunc("threadserve_sched_total",
				"Cumulative scheduler counters (sched.Snapshot fields).",
				schedField(f.Name), metrics.Label{Key: "counter", Value: f.Name})
		}
	}

	r.CounterFunc("threadserve_trace_dropped_total",
		"Trace events lost to ring wraparound across all worker rings.",
		s.tracer.Dropped)

	s.startPoller(statser, hasStats)
	s.startWatchdog(r)
}

// startPoller launches the interval sampler: scheduler counter rates
// from Snapshot deltas, and per-worker busy time / utilization from a
// windowed trace summary. Utilization is computed over the trace's
// retained window rather than as a delta, so ring wraparound can
// never drive it negative.
func (s *Server) startPoller(statser executorStatser, hasStats bool) {
	r := s.registry
	var rates map[string]*metrics.Gauge
	if hasStats {
		rates = make(map[string]*metrics.Gauge)
		for _, f := range (sched.Snapshot{}).Fields() {
			rates[f.Name] = r.Gauge("threadserve_sched_rate",
				"Scheduler counter rates per second over the last poll interval.",
				metrics.Label{Key: "counter", Value: f.Name})
		}
	}
	// sample runs from both the poller goroutine and scrape handlers
	// (OnScrape below), so its delta state needs the lock.
	var mu sync.Mutex
	var prev sched.Snapshot
	var prevAt time.Time

	sample := func() {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		if hasStats {
			cur := statser.Stats()
			if !prevAt.IsZero() {
				if dt := now.Sub(prevAt).Seconds(); dt > 0 {
					for _, f := range cur.Delta(prev).Fields() {
						rates[f.Name].Set(float64(f.Value) / dt)
					}
				}
			}
			prev, prevAt = cur, now
		}
		snap := s.tracer.Snapshot()
		if snap == nil {
			return
		}
		summ := tracez.Summarize(snap)
		for _, ws := range summ.Workers {
			if ws.ID == watchdogRingID {
				continue
			}
			worker := metrics.Label{Key: "worker", Value: ws.Label}
			r.Gauge("threadserve_worker_busy_ns",
				"Per-worker busy time within the retained trace window.",
				worker).Set(float64(ws.BusyNs))
			util := 0.0
			if summ.WallNs > 0 {
				util = float64(ws.BusyNs) / float64(summ.WallNs)
				if util > 1 {
					util = 1
				}
			}
			r.Gauge("threadserve_worker_utilization",
				"Per-worker utilization (busy/wall) over the retained trace window.",
				worker).Set(util)
		}
	}
	s.poller = metrics.NewPoller(s.cfg.MetricsInterval, sample)
	s.poller.Start()
	// Scrapes also refresh the windowed gauges, so a curl against an
	// otherwise-idle server still sees current utilization.
	r.OnScrape(sample)
}

// startWatchdog attaches the stall watchdog when the executor exposes
// the park surface (worksteal pools and shard resolvers; forkjoin
// teams spin rather than park, so no watchdog — their stall counters
// are registered anyway, permanently zero, to keep the exposed family
// set model-independent).
func (s *Server) startWatchdog(r *metrics.Registry) {
	target, ok := s.exec.(metrics.SchedTarget)
	if !ok || target.Workers() == 0 {
		help := "Stall anomalies detected by the scheduler watchdog."
		r.Counter("threadserve_sched_stalls_total", help, metrics.Label{Key: "kind", Value: "all-parked"})
		r.Counter("threadserve_sched_stalls_total", help, metrics.Label{Key: "kind", Value: "partial-park"})
		return
	}
	ring := s.tracer.Ring(watchdogRingID)
	s.tracer.Label(watchdogRingID, "watchdog")
	s.watchdog = metrics.NewWatchdog(r, "threadserve_sched_stalls_total", target, ring,
		metrics.WatchdogConfig{Interval: s.cfg.MetricsInterval})
	s.watchdog.Start()
}

// handleMetrics is the /metrics endpoint: Prometheus text exposition
// by default, the flat JSON view with ?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		s.registry.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.registry.WritePrometheus(w)
}
