package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func getRec(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

// requiredFamilies is the metric set the CI metrics-smoke job greps
// for: sched counters, queue depth, shed totals, per-worker
// utilization, latency histograms, trace overflow, and the watchdog.
var requiredFamilies = []string{
	"threadserve_sched_total",
	"threadserve_queue_depth",
	"threadserve_queue_cap",
	"threadserve_requests_total",
	"threadserve_request_latency_ns",
	"threadserve_worker_utilization",
	"threadserve_worker_busy_ns",
	"threadserve_trace_dropped_total",
	"threadserve_sched_stalls_total",
}

func TestMetricsEndpoint(t *testing.T) {
	for _, model := range []string{"cilk_for", "omp_for", "sharded:cilk_for"} {
		t.Run(model, func(t *testing.T) {
			s := newTestServer(t, Config{
				Model: model, Threads: 2, Shards: 2, Metrics: true, WorkSize: 1 << 12,
			})
			// Put load through so histograms, utilization, and sched
			// counters have something to show.
			for i := 0; i < 8; i++ {
				if rec := getRec(t, s, "/run?kernel=sum"); rec.Code != http.StatusOK {
					t.Fatalf("/run = %d: %s", rec.Code, rec.Body.String())
				}
			}

			rec := getRec(t, s, "/metrics")
			if rec.Code != http.StatusOK {
				t.Fatalf("/metrics = %d", rec.Code)
			}
			if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
				t.Errorf("content type = %q, want text/plain exposition", ct)
			}
			body := rec.Body.String()
			for _, fam := range requiredFamilies {
				if !strings.Contains(body, "# TYPE "+fam+" ") {
					t.Errorf("missing family %s\n", fam)
				}
			}
			if !strings.Contains(body, `threadserve_request_latency_ns_count{handler="run"} 8`) {
				t.Errorf("latency histogram did not count 8 runs:\n%s", body)
			}

			// Healthy server: the watchdog stays quiet.
			for _, line := range strings.Split(body, "\n") {
				if strings.HasPrefix(line, "threadserve_sched_stalls_total") && !strings.HasSuffix(line, " 0") {
					t.Errorf("watchdog not quiet: %s", line)
				}
			}
		})
	}
}

func TestMetricsJSONFormat(t *testing.T) {
	s := newTestServer(t, Config{Model: "cilk_for", Threads: 2, Metrics: true, WorkSize: 1 << 12})
	if rec := getRec(t, s, "/run?kernel=sum"); rec.Code != http.StatusOK {
		t.Fatalf("/run = %d", rec.Code)
	}
	rec := getRec(t, s, "/metrics?format=json")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics?format=json = %d", rec.Code)
	}
	var m map[string]float64
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("JSON exposition not flat name->value: %v", err)
	}
	if m[`threadserve_requests_total{outcome="completed"}`] != 1 {
		t.Errorf("completed count = %v, want 1", m[`threadserve_requests_total{outcome="completed"}`])
	}
	if _, ok := m[`threadserve_request_latency_ns_p99{handler="run"}`]; !ok {
		t.Error("JSON exposition missing latency quantile entries")
	}
}

// Metrics off: no endpoint, no request-id header, no behavior change.
func TestMetricsDisabledByDefault(t *testing.T) {
	s := newTestServer(t, Config{Model: "omp_for", Threads: 2, WorkSize: 1 << 12})
	if rec := getRec(t, s, "/metrics"); rec.Code != http.StatusNotFound {
		t.Errorf("/metrics with metrics off = %d, want 404", rec.Code)
	}
	rec := getRec(t, s, "/run?kernel=sum")
	if rec.Code != http.StatusOK {
		t.Fatalf("/run = %d", rec.Code)
	}
	if rec.Header().Get("X-Request-Id") != "" {
		t.Error("X-Request-Id set without tracing")
	}
}

// With metrics on, admitted requests get correlatable ids.
func TestRequestIDHeader(t *testing.T) {
	s := newTestServer(t, Config{Model: "cilk_for", Threads: 2, Metrics: true, WorkSize: 1 << 12})
	first := getRec(t, s, "/run?kernel=sum").Header().Get("X-Request-Id")
	second := getRec(t, s, "/run?kernel=sum").Header().Get("X-Request-Id")
	if first == "" || second == "" || first == second {
		t.Errorf("request ids not minted per request: %q then %q", first, second)
	}
}
