// Package serve implements the latency-bound service scenario: an
// HTTP front end that executes the repo's kernels (and the Rodinia
// PathFinder DP) on a selectable threading runtime, turning the
// paper's "which model is fastest" question into "which scheduler
// holds its tail under load".
//
// The server is built on shard.Executor (via models.NewExecutor), not
// on the Model interface: Model methods reproduce the paper's
// single-benchmark-loop semantics and are not safe for concurrent
// calls, while the executor surface is exactly the concurrent one —
// a work-stealing pool absorbs overlapping request loops help-first,
// a fork-join team serializes them through its execution lock
// (arrival bursts become queueing delay), and a sharded resolver
// routes them across pools. Those differences are what the open-loop
// load sweep (internal/loadgen, cmd/loadsweep) measures.
//
// Service semantics, in order of application:
//
//   - Admission: a bounded token bucket of Config.Queue slots. A
//     request that cannot take a slot immediately is shed with 429 and
//     Retry-After — explicit load shedding rather than unbounded
//     queueing, so the tail stays measurable instead of divergent.
//   - Deadline: every admitted request runs under a context deadline
//     (?timeout_ms, default Config.Timeout) that flows into the
//     executor's Ctx API. Expiry cancels the region at the next chunk
//     boundary, the loop drains synchronously, and the request
//     reports 504 — the runtime is reusable the moment the handler
//     returns.
//   - Hedging: /hedged duplicates a request through
//     futures.HedgeCtx after Config.Hedge; the loser is canceled and
//     drained before the response is written.
package serve

import (
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"threading/internal/metrics"
	"threading/internal/models"
	"threading/internal/shard"
	"threading/internal/tracez"
)

// Config selects the runtime and the service envelope.
type Config struct {
	// Model is any name models.NewExecutor accepts, e.g. "omp_for",
	// "cilk_for", "sharded:cilk_for".
	Model string
	// Threads is the runtime's worker budget; 0 selects GOMAXPROCS.
	Threads int
	// Shards and Balancer configure sharded models (see
	// models.WithShardCount / WithShardBalancer); zero values mean
	// unsharded / the balancer default.
	Shards   int
	Balancer string
	// Pinned locks the runtime's workers to OS threads.
	Pinned bool
	// Grain is the loop grain requests execute with; 0 is the
	// runtime's default chunking.
	Grain int
	// Queue bounds admission: at most Queue requests are in flight or
	// queued inside the runtime at once; the rest are shed with 429.
	// 0 selects 4x the thread count.
	Queue int
	// Timeout is the default per-request deadline; 0 selects 2s.
	Timeout time.Duration
	// Hedge is the default hedge delay of /hedged; 0 selects 5ms.
	Hedge time.Duration
	// WorkSize is the base problem size n the workloads are built at;
	// 0 selects 1<<15. Requests may ask for smaller sizes (?n=...),
	// never larger.
	WorkSize int
	// Tracer, when non-nil, records the runtime's scheduler events.
	Tracer *tracez.Tracer
	// Metrics enables the continuous-telemetry layer: a registry of
	// request and scheduler metrics exposed at /metrics (Prometheus
	// text format; ?format=json for the expvar-style JSON view), a
	// sampling poller deriving per-worker utilization and sched
	// counter rates, and a stall watchdog. When Metrics is set and
	// Tracer is nil the server creates a small internal tracer, since
	// utilization and request correlation are tracez-derived — that
	// ring recording is part of the overhead the benchgate
	// metrics-overhead invariant bounds. Off by default; a disabled
	// server behaves exactly as before this layer existed.
	Metrics bool
	// MetricsInterval is the poller and watchdog observation period;
	// 0 selects metrics.DefaultInterval.
	MetricsInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Model == "" {
		c.Model = models.OMPFor
	}
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.Queue <= 0 {
		c.Queue = 4 * c.Threads
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Hedge <= 0 {
		c.Hedge = 5 * time.Millisecond
	}
	if c.WorkSize <= 0 {
		c.WorkSize = 1 << 15
	}
	return c
}

// Server executes kernel requests on one shared runtime. It
// implements http.Handler; all state mutation is atomic, so the
// handler is safe for net/http's per-connection goroutines.
type Server struct {
	cfg  Config
	exec shard.Executor
	work *workload
	mux  *http.ServeMux

	// sem holds one token per admitted in-flight request.
	sem chan struct{}

	depth     atomic.Int64 // admitted, not yet completed
	peakDepth atomic.Int64
	accepted  atomic.Int64
	shed      atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	timeouts  atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64 // hedged requests won by the duplicate

	// Telemetry (nil / zero when Config.Metrics is off).
	nextReq  atomic.Int64 // request-id mint; ids start at 1
	tracer   *tracez.Tracer
	registry *metrics.Registry
	poller   *metrics.Poller
	watchdog *metrics.Watchdog
}

// New builds the runtime and workloads and returns a ready server.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	tracer := cfg.Tracer
	if cfg.Metrics && tracer == nil {
		// Per-worker utilization and request attribution are derived
		// from trace events, so metrics need a tracer; a small ring
		// keeps the per-poll snapshot cost bounded.
		tracer = tracez.New(internalTraceCapacity)
	}
	ex, err := models.NewExecutor(cfg.Model, cfg.Threads,
		models.WithShardCount(cfg.Shards),
		models.WithShardBalancer(cfg.Balancer),
		models.WithPinnedWorkers(cfg.Pinned),
		models.WithTracer(tracer))
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Server{
		cfg:    cfg,
		exec:   ex,
		work:   newWorkload(cfg.WorkSize),
		sem:    make(chan struct{}, cfg.Queue),
		tracer: tracer,
	}
	if cfg.Metrics {
		s.initMetrics()
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statz", s.handleStatz)
	s.mux.Handle("/run", s.instrumented("run", s.handleRun))
	s.mux.Handle("/fanout", s.instrumented("fanout", s.handleFanout))
	s.mux.Handle("/hedged", s.instrumented("hedged", s.handleHedged))
	if s.registry != nil {
		s.mux.HandleFunc("/metrics", s.handleMetrics)
	}
	return s, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Model reports the configured model name.
func (s *Server) Model() string { return s.cfg.Model }

// Registry returns the server's telemetry registry — what /metrics
// exposes — or nil when the server was built without Config.Metrics.
// In-process harnesses (benchgate's latency suite) scrape it directly
// instead of going through the HTTP exposition.
func (s *Server) Registry() *metrics.Registry { return s.registry }

// Close quiesces and releases the runtime. The server must not serve
// requests afterwards.
func (s *Server) Close() error {
	if s.watchdog != nil {
		s.watchdog.Stop()
	}
	if s.poller != nil {
		s.poller.Stop()
	}
	err := s.exec.Quiesce()
	s.exec.Close()
	return err
}

// admit takes an admission slot without blocking; false means shed.
func (s *Server) admit() bool {
	select {
	case s.sem <- struct{}{}:
		s.accepted.Add(1)
		d := s.depth.Add(1)
		for {
			peak := s.peakDepth.Load()
			if d <= peak || s.peakDepth.CompareAndSwap(peak, d) {
				break
			}
		}
		return true
	default:
		s.shed.Add(1)
		return false
	}
}

func (s *Server) release() {
	s.depth.Add(-1)
	<-s.sem
}

// Stats is the /statz payload: cumulative request counters plus the
// current and peak admission-queue depth.
type Stats struct {
	Model     string `json:"model"`
	Threads   int    `json:"threads"`
	QueueCap  int    `json:"queue_cap"`
	Depth     int64  `json:"depth"`
	PeakDepth int64  `json:"peak_depth"`
	Accepted  int64  `json:"accepted"`
	Shed      int64  `json:"shed"`
	Completed int64  `json:"completed"`
	Failed    int64  `json:"failed"`
	Timeouts  int64  `json:"timeouts"`
	Hedges    int64  `json:"hedges"`
	HedgeWins int64  `json:"hedge_wins"`
}

// Stats snapshots the counters. resetPeak additionally resets the
// peak queue depth to the current depth, so a load sweep can read the
// peak per measurement point.
func (s *Server) Stats(resetPeak bool) Stats {
	st := Stats{
		Model:     s.cfg.Model,
		Threads:   s.cfg.Threads,
		QueueCap:  s.cfg.Queue,
		Depth:     s.depth.Load(),
		PeakDepth: s.peakDepth.Load(),
		Accepted:  s.accepted.Load(),
		Shed:      s.shed.Load(),
		Completed: s.completed.Load(),
		Failed:    s.failed.Load(),
		Timeouts:  s.timeouts.Load(),
		Hedges:    s.hedges.Load(),
		HedgeWins: s.hedgeWins.Load(),
	}
	if resetPeak {
		// Swap, not Store: a plain Store could overwrite a peak raised
		// by a concurrent admit between our read and the write, and
		// could also lower the watermark below the live depth. Take
		// the watermark atomically, then re-raise it to at least the
		// current depth with the same CAS loop admit uses — the
		// watermark is never less than any depth that existed after
		// the reset.
		st.PeakDepth = s.peakDepth.Swap(st.Depth)
		for {
			d := s.depth.Load()
			p := s.peakDepth.Load()
			if d <= p || s.peakDepth.CompareAndSwap(p, d) {
				break
			}
		}
	}
	return st
}
