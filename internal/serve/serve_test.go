package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"threading/internal/models"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

func get(t *testing.T, s *Server, path string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

func decode[T any](t *testing.T, body []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("unmarshal %q: %v", body, err)
	}
	return v
}

func TestRunAllKernelsAllModels(t *testing.T) {
	// The sum checksum must agree across runtimes: same data, same
	// reduction, different scheduler.
	var want float64
	for i, name := range []string{models.OMPFor, models.CilkFor, models.CPPAsync, "sharded:cilk_for"} {
		s := newTestServer(t, Config{Model: name, Threads: 2, WorkSize: 1 << 12})
		for _, k := range Kernels() {
			code, body := get(t, s, "/run?kernel="+k)
			if code != http.StatusOK {
				t.Fatalf("%s /run?kernel=%s = %d: %s", name, k, code, body)
			}
			resp := decode[Response](t, body)
			if resp.Kernel != k || resp.NS <= 0 {
				t.Fatalf("%s response = %+v", k, resp)
			}
		}
		_, body := get(t, s, "/run?kernel=sum")
		got := decode[Response](t, body).Result
		if i == 0 {
			want = got
		} else if math.Abs(got-want) > 1e-6*math.Abs(want) {
			t.Fatalf("%s sum = %g, want %g (runtime changed the math)", name, got, want)
		}
	}
}

func TestHealthzAndStatz(t *testing.T) {
	s := newTestServer(t, Config{Model: models.OMPFor, Threads: 1, WorkSize: 1 << 10})
	code, body := get(t, s, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d: %s", code, body)
	}
	get(t, s, "/run?kernel=sum")
	code, body = get(t, s, "/statz")
	if code != http.StatusOK {
		t.Fatalf("/statz = %d", code)
	}
	st := decode[Stats](t, body)
	if st.Accepted < 1 || st.Completed < 1 || st.Depth != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDeadlineExpiry504AndRuntimeReusable is the satellite contract:
// a request whose deadline expires mid-loop reports 504 with the
// region fully drained, and the shared runtime serves the next
// request normally.
func TestDeadlineExpiry504AndRuntimeReusable(t *testing.T) {
	for _, name := range []string{models.OMPFor, models.CilkFor} {
		t.Run(name, func(t *testing.T) {
			// A big grid makes the 64-phase pathfinder request take well
			// over the 1ms deadline on any hardware.
			s := newTestServer(t, Config{Model: name, Threads: 2, WorkSize: 1 << 17})
			code, body := get(t, s, "/run?kernel=pathfinder&rows=64&timeout_ms=1")
			if code != http.StatusGatewayTimeout {
				t.Fatalf("deadline-busting request = %d: %s", code, body)
			}
			// Drained: the handler returned, so depth is back to zero.
			st := s.Stats(false)
			if st.Depth != 0 || st.Timeouts != 1 {
				t.Fatalf("after 504: %+v", st)
			}
			// Reusable: the same runtime completes the next request.
			code, body = get(t, s, "/run?kernel=sum")
			if code != http.StatusOK {
				t.Fatalf("request after 504 = %d: %s", code, body)
			}
			// Quiesce must find nothing outstanding (Close re-checks on
			// cleanup; this asserts it happens while the server is live).
			if err := s.exec.Quiesce(); err != nil {
				t.Fatalf("Quiesce after 504: %v", err)
			}
		})
	}
}

func TestAdmissionShed429(t *testing.T) {
	s := newTestServer(t, Config{Model: models.OMPFor, Threads: 1, Queue: 1, WorkSize: 1 << 10})
	// Occupy the only admission slot directly — deterministic, no
	// timing games.
	s.sem <- struct{}{}
	req := httptest.NewRequest(http.MethodGet, "/run?kernel=sum", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("full queue = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if st := s.Stats(false); st.Shed != 1 {
		t.Fatalf("shed = %d, want 1", st.Shed)
	}
	<-s.sem
	if code, body := get(t, s, "/run?kernel=sum"); code != http.StatusOK {
		t.Fatalf("after slot freed = %d: %s", code, body)
	}
}

func TestHedgedRequest(t *testing.T) {
	s := newTestServer(t, Config{Model: models.CilkFor, Threads: 2, WorkSize: 1 << 12})
	code, body := get(t, s, "/hedged?kernel=sum&hedge_ms=0")
	if code != http.StatusOK {
		t.Fatalf("/hedged = %d: %s", code, body)
	}
	resp := decode[Response](t, body)
	if !resp.Hedged {
		t.Fatalf("hedge_ms=0 did not hedge: %+v", resp)
	}
	st := s.Stats(false)
	if st.Hedges != 1 {
		t.Fatalf("hedges = %d, want 1", st.Hedges)
	}
	if st.Depth != 0 {
		t.Fatalf("depth = %d after response, want 0 (loser leaked)", st.Depth)
	}
	// A hedged request that blows its deadline still reports 504 with
	// both attempts drained.
	code, _ = get(t, s, "/hedged?kernel=pathfinder&rows=64&hedge_ms=0&timeout_ms=1")
	if code != http.StatusGatewayTimeout && code != http.StatusOK {
		t.Fatalf("deadline-busting hedged request = %d", code)
	}
	if st := s.Stats(false); st.Depth != 0 {
		t.Fatalf("depth = %d, want 0", st.Depth)
	}
}

func TestFanoutMatchesSum(t *testing.T) {
	s := newTestServer(t, Config{Model: models.CilkFor, Threads: 2, WorkSize: 1 << 12})
	_, body := get(t, s, "/run?kernel=sum")
	want := decode[Response](t, body).Result
	code, body := get(t, s, "/fanout?ways=3")
	if code != http.StatusOK {
		t.Fatalf("/fanout = %d: %s", code, body)
	}
	resp := decode[Response](t, body)
	if resp.Ways != 3 {
		t.Fatalf("ways = %d", resp.Ways)
	}
	if math.Abs(resp.Result-want) > 1e-6*math.Abs(want) {
		t.Fatalf("fanout sum = %g, want %g", resp.Result, want)
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(t, Config{Model: models.OMPFor, Threads: 1, WorkSize: 1 << 10})
	for _, path := range []string{
		"/run?kernel=nope",
		"/run?timeout_ms=abc",
		"/run?n=abc",
		"/fanout?ways=0",
		"/fanout?ways=65",
		"/hedged?hedge_ms=x",
	} {
		if code, body := get(t, s, path); code != http.StatusBadRequest {
			t.Errorf("%s = %d (%s), want 400", path, code, body)
		}
	}
	// Client errors are not runtime failures.
	if st := s.Stats(false); st.Failed != 0 {
		t.Fatalf("failed = %d, want 0", st.Failed)
	}
}

func TestStatzResetPeak(t *testing.T) {
	s := newTestServer(t, Config{Model: models.OMPFor, Threads: 1, WorkSize: 1 << 10})
	get(t, s, "/run?kernel=sum")
	if st := s.Stats(false); st.PeakDepth != 1 {
		t.Fatalf("peak = %d, want 1", st.PeakDepth)
	}
	code, body := get(t, s, "/statz?reset-peak=1")
	if code != http.StatusOK {
		t.Fatalf("/statz reset = %d", code)
	}
	if st := decode[Stats](t, body); st.PeakDepth != 1 {
		t.Fatalf("reset response peak = %d, want pre-reset 1", st.PeakDepth)
	}
	if st := s.Stats(false); st.PeakDepth != 0 {
		t.Fatalf("post-reset peak = %d, want 0", st.PeakDepth)
	}
}

func TestRequestSizeClamped(t *testing.T) {
	s := newTestServer(t, Config{Model: models.OMPFor, Threads: 1, WorkSize: 1 << 10})
	// Oversized n falls back to the workload size instead of reading
	// out of bounds.
	code, body := get(t, s, "/run?kernel=sum&n=999999999")
	if code != http.StatusOK {
		t.Fatalf("oversized n = %d: %s", code, body)
	}
	code, _ = get(t, s, "/run?kernel=pathfinder&rows=9999")
	if code != http.StatusOK {
		t.Fatalf("oversized rows = %d", code)
	}
}

func TestServerTimeoutDefault(t *testing.T) {
	// The default 2s deadline lets normal requests finish: no spurious
	// 504 on an unhurried request.
	s := newTestServer(t, Config{Model: models.CPPThread, Threads: 2, WorkSize: 1 << 10, Timeout: 2 * time.Second})
	if code, body := get(t, s, "/run?kernel=matvec"); code != http.StatusOK {
		t.Fatalf("matvec = %d: %s", code, body)
	}
}
