package serve

import (
	"context"
	"fmt"
	"math"
	"sync"

	"threading/internal/rodinia/pathfinder"
)

// workload holds the pre-generated request inputs. Inputs are built
// once at server start and only ever read by requests; every output a
// request writes lives in a pooled per-request buffer, so concurrent
// requests share no mutable state.
//
// Sizes derive from one knob n (Config.WorkSize): the vector kernels
// run over n elements, matvec over a sqrt(n)-sided matrix (so one
// request is ~n multiply-adds for every kernel), and the PathFinder
// grid keeps gridRows rows of n/4 columns — requests select how many
// rows (phases) to run, which is how a caller shapes a deliberately
// deadline-busting request.
type workload struct {
	n    int
	x, y []float64

	matN int       // matrix side
	mat  []float64 // matN x matN, row-major

	grid *pathfinder.Grid

	fbufs sync.Pool // *[]float64, len n — axpy/matvec outputs
	ibufs sync.Pool // *[]int32, len grid.Cols — pathfinder scratch
}

// gridRows is the pre-generated PathFinder depth: the default request
// uses defaultRows phases, and ?rows= may ask up to gridRows.
const (
	gridRows    = 64
	defaultRows = 8
)

func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func newWorkload(n int) *workload {
	w := &workload{n: n}
	w.x = make([]float64, n)
	w.y = make([]float64, n)
	st := uint64(42)
	for i := 0; i < n; i++ {
		w.x[i] = float64(splitmix64(&st)%1000) / 1000
		w.y[i] = float64(splitmix64(&st)%1000) / 1000
	}

	w.matN = int(math.Sqrt(float64(n)))
	if w.matN < 16 {
		w.matN = 16
	}
	w.mat = make([]float64, w.matN*w.matN)
	for i := range w.mat {
		w.mat[i] = float64(splitmix64(&st)%1000) / 1000
	}

	cols := n / 4
	if cols < 64 {
		cols = 64
	}
	w.grid = pathfinder.Generate(gridRows, cols, 42)

	w.fbufs.New = func() any { b := make([]float64, n); return &b }
	w.ibufs.New = func() any { b := make([]int32, cols); return &b }
	return w
}

// kernelReq is one parsed kernel request.
type kernelReq struct {
	kernel string
	n      int // vector/matrix extent; clamped to the workload
	rows   int // pathfinder phases; clamped to gridRows
}

// Kernels lists the servable kernels.
func Kernels() []string { return []string{"sum", "axpy", "matvec", "pathfinder"} }

// clamp resolves a request's extents against the workload.
func (w *workload) clamp(req kernelReq) (kernelReq, error) {
	switch req.kernel {
	case "sum", "axpy":
		if req.n <= 0 || req.n > w.n {
			req.n = w.n
		}
	case "matvec":
		if req.n <= 0 || req.n > w.matN {
			req.n = w.matN
		}
	case "pathfinder":
		if req.rows <= 0 {
			req.rows = defaultRows
		}
		if req.rows > gridRows {
			req.rows = gridRows
		}
	default:
		return req, fmt.Errorf("serve: unknown kernel %q (have %v)", req.kernel, Kernels())
	}
	return req, nil
}

// run executes one kernel request on the server's executor and
// returns a result checksum. Every output buffer is returned to its
// pool before run returns — by then the loop has drained, even on
// cancellation, so no task can still be writing into it.
func (s *Server) run(ctx context.Context, req kernelReq) (float64, error) {
	req, err := s.work.clamp(req)
	if err != nil {
		return 0, err
	}
	switch req.kernel {
	case "sum":
		return s.sumRange(ctx, 0, req.n)
	case "axpy":
		return s.axpy(ctx, req.n)
	case "matvec":
		return s.matvec(ctx, req.n)
	case "pathfinder":
		return s.pathfinder(ctx, req.rows)
	}
	panic("unreachable")
}

// sumRange reduces x over [lo, hi) — also the fan-out sub-request.
func (s *Server) sumRange(ctx context.Context, lo, hi int) (float64, error) {
	w := s.work
	return s.exec.ParallelReduceCtx(ctx, lo, hi, s.cfg.Grain, 0,
		func(l, h int, acc float64) float64 {
			for i := l; i < h; i++ {
				acc += w.x[i]
			}
			return acc
		},
		func(a, b float64) float64 { return a + b })
}

func (s *Server) axpy(ctx context.Context, n int) (float64, error) {
	w := s.work
	outp := w.fbufs.Get().(*[]float64)
	defer w.fbufs.Put(outp)
	out := *outp
	const a = 2.5
	err := s.exec.ParallelForCtx(ctx, 0, n, s.cfg.Grain, func(l, h int) {
		for i := l; i < h; i++ {
			out[i] = a*w.x[i] + w.y[i]
		}
	})
	if err != nil {
		return 0, err
	}
	return out[0] + out[n/2] + out[n-1], nil
}

func (s *Server) matvec(ctx context.Context, n int) (float64, error) {
	w := s.work
	outp := w.fbufs.Get().(*[]float64)
	defer w.fbufs.Put(outp)
	out := *outp
	err := s.exec.ParallelForCtx(ctx, 0, n, s.cfg.Grain, func(l, h int) {
		for r := l; r < h; r++ {
			row := w.mat[r*w.matN : r*w.matN+n]
			var acc float64
			for j, v := range row {
				acc += v * w.x[j]
			}
			out[r] = acc
		}
	})
	if err != nil {
		return 0, err
	}
	return out[0] + out[n/2] + out[n-1], nil
}

func (s *Server) pathfinder(ctx context.Context, rows int) (float64, error) {
	w := s.work
	curp := w.ibufs.Get().(*[]int32)
	nextp := w.ibufs.Get().(*[]int32)
	defer w.ibufs.Put(curp)
	defer w.ibufs.Put(nextp)
	final, err := pathfinder.ParallelCtx(ctx, s.exec, w.grid.View(rows), s.cfg.Grain, *curp, *nextp)
	if err != nil {
		return 0, err
	}
	return float64(pathfinder.MinCost(final)), nil
}
