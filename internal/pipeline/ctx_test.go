package pipeline

import (
	"context"
	"errors"
	"sync"
	"testing"

	"threading/internal/sched"
)

func TestRunCtxCompletes(t *testing.T) {
	p := New().
		AddParallel("double", func(v any) (any, error) { return v.(int) * 2, nil }).
		AddSerial("sink-order", func(v any) (any, error) { return v, nil })

	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	var got []int
	n, err := p.RunCtx(context.Background(), 4, 8, FromSlice(items), func(v any) {
		got = append(got, v.(int))
	})
	if err != nil || n != 100 {
		t.Fatalf("RunCtx = (%d, %v), want (100, nil)", n, err)
	}
	for i, v := range got {
		if v != 2*i {
			t.Fatalf("got[%d] = %d, want %d (order not preserved)", i, v, 2*i)
		}
	}
}

func TestRunCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	p := New().AddParallel("block", func(v any) (any, error) {
		once.Do(cancel)
		<-ctx.Done()
		return v, nil
	})

	items := make([]int, 64)
	_, err := p.RunCtx(ctx, 4, 8, FromSlice(items), func(any) {})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// The pipeline must remain reusable after a canceled run.
	n, err := p.RunCtx(context.Background(), 2, 4, FromSlice([]int{1, 2, 3}), func(any) {})
	if err != nil || n != 3 {
		t.Fatalf("reuse RunCtx = (%d, %v), want (3, nil)", n, err)
	}
}

func TestRunCtxStagePanicTyped(t *testing.T) {
	p := New().AddParallel("boom", func(v any) (any, error) {
		if v.(int) == 0 {
			panic("stage-boom")
		}
		return v, nil
	})
	items := make([]int, 32)
	for i := range items {
		items[i] = i
	}
	_, err := p.RunCtx(context.Background(), 4, 8, FromSlice(items), func(any) {})
	var pe *sched.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *sched.PanicError", err)
	}
	if pe.Value != "stage-boom" {
		t.Fatalf("PanicError.Value = %v, want stage-boom", pe.Value)
	}
}
