// Package pipeline implements a TBB-style parallel pipeline — the
// pipelining mechanism the paper's Table I lists for Intel TBB
// (pipeline / parallel_pipeline) and groups with CUDA streams and
// OpenCL pipes as asynchronous-execution constructs.
//
// A pipeline is a linear sequence of stages. Parallel stages process
// any number of items concurrently; serial stages process one item at
// a time, in input order, even when fed out of order by an upstream
// parallel stage (a sequence-numbered reorder buffer restores order,
// as TBB's serial_in_order filters do). The number of items in flight
// is bounded by a token budget, like parallel_pipeline's
// max_number_of_live_tokens.
package pipeline

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"threading/internal/sched"
)

// Mode selects a stage's concurrency discipline.
type Mode int

const (
	// Serial stages process items one at a time, in input order —
	// TBB's serial_in_order.
	Serial Mode = iota
	// Parallel stages process items concurrently, in any order.
	Parallel
)

// String returns the TBB-style name of the mode.
func (m Mode) String() string {
	switch m {
	case Serial:
		return "serial_in_order"
	case Parallel:
		return "parallel"
	default:
		return "unknown"
	}
}

// Func transforms one item. Returning an error aborts the pipeline.
type Func func(v any) (any, error)

// stage is one configured filter.
type stage struct {
	name string
	mode Mode
	fn   Func
}

// Pipeline is a configured sequence of stages. Configure with Add*,
// execute with Run. A Pipeline is reusable but not concurrently
// runnable.
type Pipeline struct {
	stages []stage
}

// New returns an empty pipeline.
func New() *Pipeline { return &Pipeline{} }

// AddSerial appends an in-order serial stage.
func (p *Pipeline) AddSerial(name string, fn Func) *Pipeline {
	p.stages = append(p.stages, stage{name: name, mode: Serial, fn: fn})
	return p
}

// AddParallel appends a concurrent stage.
func (p *Pipeline) AddParallel(name string, fn Func) *Pipeline {
	p.stages = append(p.stages, stage{name: name, mode: Parallel, fn: fn})
	return p
}

// Stages reports the number of configured stages.
func (p *Pipeline) Stages() int { return len(p.stages) }

// item is one unit flowing through the pipeline.
type item struct {
	seq uint64
	v   any
}

// run-wide abort state: the first error wins; subsequent items are
// passed through unprocessed so channels drain without deadlock.
type abort struct {
	flag atomic.Bool
	once sync.Once
	err  error
}

func (a *abort) set(err error) {
	a.once.Do(func() {
		a.err = err
		a.flag.Store(true)
	})
}

// Run pulls items from source until it reports no more, pushes them
// through the stages with at most tokens items in flight and at most
// workers concurrent executions per parallel stage, and hands each
// final value to sink (in order if the last stage is serial). It
// returns the number of items fully processed and the first stage
// error, if any.
func (p *Pipeline) Run(workers, tokens int,
	source func() (any, bool), sink func(v any)) (int, error) {
	return p.RunCtx(context.Background(), workers, tokens, source, sink)
}

// RunCtx is Run with cooperative cancellation: once ctx is done the
// source stops feeding, stage functions stop being applied (items
// already in the channels drain unprocessed, so no token deadlocks),
// and the first failure is returned — the first stage error, a
// *sched.PanicError if a stage function panicked, or the context's
// error. The pipeline remains reusable afterwards.
func (p *Pipeline) RunCtx(ctx context.Context, workers, tokens int,
	source func() (any, bool), sink func(v any)) (int, error) {

	if len(p.stages) == 0 {
		return 0, fmt.Errorf("pipeline: no stages configured")
	}
	if workers < 1 {
		workers = 1
	}
	if tokens < 1 {
		tokens = 1
	}
	ab := &abort{}
	reg := sched.NewRegion(ctx)
	sem := make(chan struct{}, tokens)

	// Channel chain: source -> stage 0 -> ... -> stage k-1 -> sink.
	chans := make([]chan item, len(p.stages)+1)
	for i := range chans {
		chans[i] = make(chan item, tokens)
	}

	var wg sync.WaitGroup
	for i, st := range p.stages {
		in, out := chans[i], chans[i+1]
		switch st.mode {
		case Serial:
			wg.Add(1)
			go runSerial(st, in, out, ab, reg, &wg)
		case Parallel:
			wg.Add(1)
			go runParallel(st, in, out, ab, reg, workers, &wg)
		}
	}

	// Sink: consume final items, release tokens.
	processed := 0
	var sinkWg sync.WaitGroup
	sinkWg.Add(1)
	go func() {
		defer sinkWg.Done()
		for it := range chans[len(chans)-1] {
			if !ab.flag.Load() && !reg.Canceled() {
				sink(it.v)
				processed++
			}
			<-sem
		}
	}()

	// Source: feed until exhausted, aborted, or canceled.
	var seq uint64
	for !ab.flag.Load() && !reg.Canceled() {
		v, ok := source()
		if !ok {
			break
		}
		sem <- struct{}{}
		chans[0] <- item{seq: seq, v: v}
		seq++
	}
	close(chans[0])
	wg.Wait()
	sinkWg.Wait()
	if ab.err != nil {
		reg.Finish()
		return processed, ab.err
	}
	return processed, reg.Finish()
}

// apply runs one stage function on one item, translating failures
// into the run's abort/cancellation state: an error aborts the run, a
// panic is recorded as a *sched.PanicError and cancels the run, and a
// canceled run passes items through unprocessed so channels drain.
func apply(st stage, it item, ab *abort, reg *sched.Region) item {
	if ab.flag.Load() || reg.Canceled() {
		return it
	}
	var v any
	var err error
	panicked := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				reg.RecordPanic(r)
				panicked = true
			}
		}()
		v, err = st.fn(it.v)
	}()
	if panicked {
		return it // PanicError is surfaced through the region
	}
	if err != nil {
		ab.set(fmt.Errorf("pipeline: stage %q: %w", st.name, err))
		return it
	}
	return item{seq: it.seq, v: v}
}

// runSerial processes items strictly in sequence order, buffering
// early arrivals from an out-of-order upstream.
func runSerial(st stage, in <-chan item, out chan<- item, ab *abort, reg *sched.Region, wg *sync.WaitGroup) {
	defer wg.Done()
	defer close(out)
	next := uint64(0)
	pending := make(map[uint64]item)
	for it := range in {
		pending[it.seq] = it
		for {
			nx, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			out <- apply(st, nx, ab, reg)
			next++
		}
	}
	// Upstream closed: anything left is a sequencing hole, which can
	// only happen on abort; flush in arbitrary order to drain tokens.
	for _, it := range pending {
		out <- it
	}
}

// runParallel processes items with a bounded worker group.
func runParallel(st stage, in <-chan item, out chan<- item, ab *abort, reg *sched.Region, workers int, wg *sync.WaitGroup) {
	defer wg.Done()
	var inner sync.WaitGroup
	for w := 0; w < workers; w++ {
		inner.Add(1)
		go func() {
			defer inner.Done()
			for it := range in {
				out <- apply(st, it, ab, reg)
			}
		}()
	}
	inner.Wait()
	close(out)
}

// FromSlice adapts a slice into a Run source.
func FromSlice[T any](items []T) func() (any, bool) {
	i := 0
	return func() (any, bool) {
		if i >= len(items) {
			return nil, false
		}
		v := items[i]
		i++
		return v, true
	}
}
