package pipeline

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestModeString(t *testing.T) {
	if Serial.String() != "serial_in_order" || Parallel.String() != "parallel" ||
		Mode(9).String() != "unknown" {
		t.Error("Mode.String wrong")
	}
}

func TestEmptyPipelineErrors(t *testing.T) {
	if _, err := New().Run(2, 4, FromSlice([]int{1}), func(any) {}); err == nil {
		t.Fatal("empty pipeline did not error")
	}
}

func TestSerialOnlyOrder(t *testing.T) {
	p := New().AddSerial("double", func(v any) (any, error) {
		return v.(int) * 2, nil
	})
	in := []int{1, 2, 3, 4, 5}
	var got []int
	n, err := p.Run(4, 2, FromSlice(in), func(v any) { got = append(got, v.(int)) })
	if err != nil || n != 5 {
		t.Fatalf("Run = (%d, %v)", n, err)
	}
	for i, v := range got {
		if v != in[i]*2 {
			t.Fatalf("got %v", got)
		}
	}
}

func TestParallelThenSerialRestoresOrder(t *testing.T) {
	// A parallel middle stage scrambles completion order; the serial
	// sink stage must still observe items in sequence.
	p := New().
		AddParallel("square", func(v any) (any, error) {
			x := v.(int)
			// Uneven work to encourage reordering.
			spin := (x % 7) * 1000
			acc := 0
			for i := 0; i < spin; i++ {
				acc += i
			}
			_ = acc
			return x * x, nil
		}).
		AddSerial("collect", func(v any) (any, error) { return v, nil })
	const n = 500
	in := make([]int, n)
	for i := range in {
		in[i] = i
	}
	var got []int
	count, err := p.Run(4, 8, FromSlice(in), func(v any) { got = append(got, v.(int)) })
	if err != nil || count != n {
		t.Fatalf("Run = (%d, %v)", count, err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("order violated at %d: got %d, want %d", i, v, i*i)
		}
	}
}

func TestThreeStageMixed(t *testing.T) {
	var serialConcurrent atomic.Int32
	var maxSeen atomic.Int32
	p := New().
		AddSerial("tag", func(v any) (any, error) {
			cur := serialConcurrent.Add(1)
			if cur > maxSeen.Load() {
				maxSeen.Store(cur)
			}
			serialConcurrent.Add(-1)
			return v, nil
		}).
		AddParallel("work", func(v any) (any, error) { return v.(int) + 1, nil }).
		AddSerial("emit", func(v any) (any, error) { return v, nil })
	in := make([]int, 200)
	for i := range in {
		in[i] = i
	}
	sum := 0
	n, err := p.Run(4, 16, FromSlice(in), func(v any) { sum += v.(int) })
	if err != nil || n != 200 {
		t.Fatalf("Run = (%d, %v)", n, err)
	}
	want := 200*199/2 + 200
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	if maxSeen.Load() > 1 {
		t.Fatalf("serial stage ran %d items concurrently", maxSeen.Load())
	}
}

func TestErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	var processedAfterError atomic.Int64
	p := New().AddParallel("failing", func(v any) (any, error) {
		if v.(int) == 10 {
			return nil, boom
		}
		processedAfterError.Add(1)
		return v, nil
	})
	in := make([]int, 10_000)
	for i := range in {
		in[i] = i
	}
	n, err := p.Run(4, 8, FromSlice(in), func(any) {})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if !strings.Contains(err.Error(), "failing") {
		t.Fatalf("error %q lacks stage name", err)
	}
	// The abort must stop the source long before all 10k items.
	if n >= 9_000 {
		t.Fatalf("abort ineffective: %d items fully processed", n)
	}
}

func TestTokenBoundRespected(t *testing.T) {
	var inFlight, peak atomic.Int64
	p := New().
		AddParallel("in", func(v any) (any, error) {
			cur := inFlight.Add(1)
			for {
				pk := peak.Load()
				if cur <= pk || peak.CompareAndSwap(pk, cur) {
					break
				}
			}
			return v, nil
		}).
		AddParallel("out", func(v any) (any, error) {
			inFlight.Add(-1)
			return v, nil
		})
	in := make([]int, 1000)
	const tokens = 4
	if _, err := p.Run(8, tokens, FromSlice(in), func(any) {}); err != nil {
		t.Fatal(err)
	}
	// Peak concurrent items between stage entry and exit cannot
	// exceed the token budget.
	if peak.Load() > tokens {
		t.Fatalf("peak in-flight %d > tokens %d", peak.Load(), tokens)
	}
}

func TestPipelineReusable(t *testing.T) {
	p := New().AddParallel("id", func(v any) (any, error) { return v, nil })
	for round := 0; round < 3; round++ {
		n, err := p.Run(2, 2, FromSlice([]int{1, 2, 3}), func(any) {})
		if err != nil || n != 3 {
			t.Fatalf("round %d: (%d, %v)", round, n, err)
		}
	}
}

func TestStagesCount(t *testing.T) {
	p := New().AddSerial("a", nil).AddParallel("b", nil)
	if p.Stages() != 2 {
		t.Fatalf("Stages = %d", p.Stages())
	}
}

func TestQuickSumPreserved(t *testing.T) {
	check := func(vals []int16, w8, t8 uint8) bool {
		workers := int(w8%4) + 1
		tokens := int(t8%8) + 1
		in := make([]int, len(vals))
		want := 0
		for i, v := range vals {
			in[i] = int(v)
			want += int(v) + 1
		}
		p := New().
			AddParallel("inc", func(v any) (any, error) { return v.(int) + 1, nil }).
			AddSerial("sum", func(v any) (any, error) { return v, nil })
		got := 0
		n, err := p.Run(workers, tokens, FromSlice(in), func(v any) { got += v.(int) })
		return err == nil && n == len(in) && got == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
