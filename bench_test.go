// Benchmarks regenerating the paper's evaluation: one benchmark per
// table (I-III, rendering + queries) and one per figure (1-10), each
// figure with a sub-benchmark per threading model plus the sequential
// reference, followed by the ablation benchmarks DESIGN.md calls out.
//
// Run everything:   go test -bench=. -benchmem
// One figure:       go test -bench=BenchmarkFig5 -benchmem
//
// The figure benchmarks run at a reduced scale so the whole suite
// finishes in minutes; cmd/threadbench runs the full-size sweep.
package threading_test

import (
	"runtime"
	"strings"
	"testing"

	"threading/internal/deque"
	"threading/internal/features"
	"threading/internal/forkjoin"
	"threading/internal/harness"
	"threading/internal/kernels"
	"threading/internal/models"
	"threading/internal/rodinia/kmeans"
	"threading/internal/rodinia/pathfinder"
	"threading/internal/uts"
	"threading/internal/worksteal"
)

// benchScale shrinks workloads relative to the threadbench defaults so
// that `go test -bench=.` completes quickly.
const benchScale = 0.02

// benchThreads is the parallelism for the model sub-benchmarks.
var benchThreads = runtime.GOMAXPROCS(0)

// benchFigure runs one paper figure as a benchmark: sequential
// reference plus one sub-benchmark per model.
func benchFigure(b *testing.B, id string) {
	e, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	w := e.Prepare(benchScale)
	b.Logf("%s: %s [%s]", e.ID, e.Title, w.Desc)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w.Seq()
		}
	})
	for _, name := range e.Models {
		name := name
		b.Run(name, func(b *testing.B) {
			m := models.MustNew(name, benchThreads)
			defer m.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Run(m)
			}
		})
	}
}

// --- Tables I-III (qualitative comparison) ---------------------------

func BenchmarkTableI(b *testing.B)   { benchTable(b, 1) }
func BenchmarkTableII(b *testing.B)  { benchTable(b, 2) }
func BenchmarkTableIII(b *testing.B) { benchTable(b, 3) }

func benchTable(b *testing.B, n int) {
	t := features.Tables()[n-1]
	b.Run("render", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sb strings.Builder
			t.Render(&sb)
			if sb.Len() == 0 {
				b.Fatal("empty render")
			}
		}
	})
	b.Run("query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, api := range features.APIs() {
				for _, f := range t.Columns {
					t.Supports(api, f)
				}
			}
		}
	})
}

// --- Figures 1-10 (performance comparison) ---------------------------

func BenchmarkFig1Axpy(b *testing.B)    { benchFigure(b, "fig1") }
func BenchmarkFig2Sum(b *testing.B)     { benchFigure(b, "fig2") }
func BenchmarkFig3Matvec(b *testing.B)  { benchFigure(b, "fig3") }
func BenchmarkFig4Matmul(b *testing.B)  { benchFigure(b, "fig4") }
func BenchmarkFig5Fib(b *testing.B)     { benchFigure(b, "fig5") }
func BenchmarkFig6BFS(b *testing.B)     { benchFigure(b, "fig6") }
func BenchmarkFig7HotSpot(b *testing.B) { benchFigure(b, "fig7") }
func BenchmarkFig8LUD(b *testing.B)     { benchFigure(b, "fig8") }
func BenchmarkFig9LavaMD(b *testing.B)  { benchFigure(b, "fig9") }
func BenchmarkFig10SRAD(b *testing.B)   { benchFigure(b, "fig10") }

// --- Ablations (DESIGN.md section 5) ---------------------------------

// BenchmarkAblationDeque runs the same work-stealing scheduler over
// lock-free Chase-Lev deques (Cilk Plus) vs mutex-based deques (Intel
// OpenMP tasks) on uncut recursive Fibonacci — the paper's explanation
// for Fig. 5. Note: the lock-based penalty the paper measured comes
// from many concurrent thieves contending on the victim's lock; on a
// host with few cores the two backends measure within noise, because
// at most one thief runs at a time while Chase-Lev pays its mandatory
// store-load fence on every pop (see EXPERIMENTS.md).
func BenchmarkAblationDeque(b *testing.B) {
	const fibN = 21
	for _, cfg := range []struct {
		name string
		kind deque.Kind
	}{
		{"chase-lev", deque.KindChaseLev},
		{"locked", deque.KindLocked},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			m := models.NewCilkSpawnWithDeque(benchThreads, cfg.kind)
			defer m.Close()
			want := kernels.FibSeq(fibN)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := kernels.FibTask(m, fibN, 0); got != want {
					b.Fatalf("fib = %d, want %d", got, want)
				}
			}
		})
	}
}

// BenchmarkAblationGrain sweeps cilk_for's grain size on a flat loop:
// small grains expose the steal-serialized distribution cost the
// paper blames for cilk_for's data-parallel losses.
func BenchmarkAblationGrain(b *testing.B) {
	const n = 200_000
	x := kernels.RandomVector(n, 1)
	y := kernels.RandomVector(n, 2)
	for _, grain := range []int{16, 128, 1024, 0 /* default heuristic */} {
		grain := grain
		name := "default"
		if grain > 0 {
			name = itoa(grain)
		}
		b.Run("grain="+name, func(b *testing.B) {
			m := models.NewCilkForGrain(benchThreads, grain)
			defer m.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kernels.Axpy(m, 2.0, x, y)
			}
		})
	}
}

// BenchmarkLoopDist contrasts the two ForDAC partitioners on the
// paper's flat data kernels at a distribution-stressing grain: eager
// decomposition pre-spawns every chunk (n/grain tasks per loop, each
// reaching an idle worker only through a steal), while lazy splitting
// forks work off only when another worker signals demand. The gap
// between the two is the adaptive-distribution win; cmd/loopdist
// records it to BENCH_loopdist.json.
func BenchmarkLoopDist(b *testing.B) {
	const (
		vecN  = 1 << 18
		matN  = 384 // matvec dimension
		mulN  = 96  // matmul dimension
		grain = 64  // distribution stress: vecN/grain eager spawns
	)
	x := kernels.RandomVector(vecN, 11)
	y := kernels.RandomVector(vecN, 12)
	mva := kernels.RandomVector(matN*matN, 13)
	mvx := kernels.RandomVector(matN, 14)
	mvy := make([]float64, matN)
	mma := kernels.RandomVector(mulN*mulN, 15)
	mmb := kernels.RandomVector(mulN*mulN, 16)
	mmc := make([]float64, mulN*mulN)

	parts := []struct {
		name string
		p    worksteal.Partitioner
	}{
		{"eager", worksteal.Eager},
		{"lazy", worksteal.Lazy},
	}
	kernelsToRun := []struct {
		name string
		run  func(m models.Model)
	}{
		{"Axpy", func(m models.Model) { kernels.Axpy(m, 2.0, x, y) }},
		{"Sum", func(m models.Model) { kernels.Sum(m, 2.0, x) }},
		{"Matvec", func(m models.Model) { kernels.Matvec(m, mva, mvx, mvy, matN) }},
		{"Matmul", func(m models.Model) { kernels.Matmul(m, mma, mmb, mmc, mulN) }},
	}
	for _, k := range kernelsToRun {
		k := k
		for _, part := range parts {
			part := part
			b.Run(k.name+"/"+part.name, func(b *testing.B) {
				m := models.NewCilkForGrainPartitioner(benchThreads, grain, part.p)
				defer m.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					k.run(m)
				}
			})
		}
	}
}

// BenchmarkAblationSchedule compares work-sharing schedules on a
// uniform workload (Axpy-like) and a triangular one (LUD-outer-like):
// static should win the uniform case, dynamic/guided the imbalanced
// one.
func BenchmarkAblationSchedule(b *testing.B) {
	const n = 100_000
	x := kernels.RandomVector(n, 3)
	out := make([]float64, n)
	schedules := []struct {
		name string
		s    forkjoin.Schedule
	}{
		{"static", forkjoin.Static},
		{"dynamic", forkjoin.Dynamic(256)},
		{"guided", forkjoin.Guided(64)},
	}
	for _, shape := range []string{"uniform", "triangular"} {
		shape := shape
		for _, sch := range schedules {
			sch := sch
			b.Run(shape+"/"+sch.name, func(b *testing.B) {
				m := models.NewOMPFor(benchThreads)
				defer m.Close()
				schedl := m.(models.Scheduler)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					schedl.Schedule(sch.s, n, func(lo, hi int) {
						for j := lo; j < hi; j++ {
							work := 1
							if shape == "triangular" {
								// Work grows with the index, like the
								// trailing-submatrix updates in LUD.
								work = 1 + j/(n/16+1)
							}
							acc := 0.0
							for w := 0; w < work; w++ {
								acc += x[j]
							}
							out[j] = acc
						}
					})
				}
			})
		}
	}
}

// BenchmarkAblationBarrier compares the sense-reversing barrier with
// the lock-based central barrier under a barrier-heavy workload
// (many tiny work-sharing loops, each ending in a barrier).
func BenchmarkAblationBarrier(b *testing.B) {
	const n = 10_000
	x := kernels.RandomVector(n, 4)
	y := make([]float64, n)
	for _, cfg := range []struct {
		name    string
		central bool
	}{
		{"sense-reversing", false},
		{"central", true},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var opts []forkjoin.Option
			if cfg.central {
				opts = append(opts, forkjoin.WithCentralBarrier())
			}
			m := models.NewOMPForWithOptions(benchThreads, opts...)
			defer m.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Ten dependent micro-loops -> ten barrier phases.
				for rep := 0; rep < 10; rep++ {
					m.ParallelFor(n, func(lo, hi int) {
						for j := lo; j < hi; j++ {
							y[j] = x[j] * 2
						}
					})
				}
			}
		})
	}
}

// BenchmarkAblationCutoff reproduces the paper's observation about
// uncut recursion on thread-per-task models: the deeper the cut-off
// lets recursion spawn real threads, the worse std::async-style
// execution gets. (cutoff = n-2 spawns ~2 tasks; cutoff = 8 spawns
// hundreds.)
func BenchmarkAblationCutoff(b *testing.B) {
	const fibN = 22
	want := kernels.FibSeq(fibN)
	for _, cutoff := range []int{20, 16, 12, 8} {
		cutoff := cutoff
		b.Run("cutoff="+itoa(cutoff), func(b *testing.B) {
			m := models.MustNew(models.CPPAsync, benchThreads)
			defer m.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := kernels.FibTask(m, fibN, cutoff); got != want {
					b.Fatalf("fib = %d, want %d", got, want)
				}
			}
		})
	}
}

// BenchmarkAblationTaskPolicy compares deferred (breadth-first,
// Intel-style) against immediate (work-first) task execution in the
// fork-join runtime.
func BenchmarkAblationTaskPolicy(b *testing.B) {
	const fibN = 20
	want := kernels.FibSeq(fibN)
	for _, cfg := range []struct {
		name   string
		policy forkjoin.TaskPolicy
	}{
		{"deferred", forkjoin.TaskDeferred},
		{"immediate", forkjoin.TaskImmediate},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			m := models.NewOMPTaskWithOptions(benchThreads,
				forkjoin.WithTaskPolicy(cfg.policy))
			defer m.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := kernels.FibTask(m, fibN, 0); got != want {
					b.Fatalf("fib = %d, want %d", got, want)
				}
			}
		})
	}
}

// itoa avoids importing strconv for two call sites.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- Extension workloads (related-work benchmarks) --------------------

// BenchmarkExtUTS counts an unbalanced tree (UTS, Olivier & Prins)
// under the pooled task models — the pure load-balancing stress from
// the paper's related work. Static partitioning cannot win here;
// work stealing is expected to shine.
func BenchmarkExtUTS(b *testing.B) {
	p := uts.Small(42)
	want := uts.CountSeq(p)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if uts.CountSeq(p) != want {
				b.Fatal("count mismatch")
			}
		}
	})
	for _, name := range []string{models.OMPTask, models.CilkSpawn} {
		name := name
		b.Run(name, func(b *testing.B) {
			m := models.MustNew(name, benchThreads)
			defer m.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if uts.Count(m, p, 4) != want {
					b.Fatal("count mismatch")
				}
			}
		})
	}
}

// BenchmarkExtSort merge-sorts under every task model — a DAC
// workload whose tasks carry real memory traffic, between fib (pure
// scheduling) and the flat loops (no task structure).
func BenchmarkExtSort(b *testing.B) {
	const n = 200_000
	orig := kernels.RandomVector(n, 5)
	data := make([]float64, n)
	b.Run("sequential", func(b *testing.B) {
		scratch := make([]float64, n)
		for i := 0; i < b.N; i++ {
			copy(data, orig)
			kernels.SortSeq(data, scratch)
		}
	})
	for _, name := range models.TaskNames() {
		name := name
		b.Run(name, func(b *testing.B) {
			m := models.MustNew(name, benchThreads)
			defer m.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(data, orig)
				kernels.SortTask(m, data, 16384)
			}
			b.StopTimer()
			if !kernels.IsSorted(data) {
				b.Fatal("not sorted")
			}
		})
	}
}

// BenchmarkExtPathFinder runs the Rodinia PathFinder DP — one tiny
// dependent parallel loop per row, the hardest per-phase overhead
// stress in the suite.
func BenchmarkExtPathFinder(b *testing.B) {
	g := pathfinder.Generate(100, 100_000, 3)
	want := pathfinder.MinCost(pathfinder.Seq(g))
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pathfinder.Seq(g)
		}
	})
	for _, name := range models.DataNames() {
		name := name
		b.Run(name, func(b *testing.B) {
			m := models.MustNew(name, benchThreads)
			defer m.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got := pathfinder.Parallel(m, g)
				if pathfinder.MinCost(got) != want {
					b.Fatal("wrong path cost")
				}
			}
		})
	}
}

// BenchmarkExtKmeans runs the Rodinia K-means clustering — a uniform
// compute-heavy assignment loop with a merged reduction per
// iteration.
func BenchmarkExtKmeans(b *testing.B) {
	ds := kmeans.Generate(20_000, 8, 8, 9)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kmeans.Seq(ds, 8, 5)
		}
	})
	for _, name := range models.DataNames() {
		name := name
		b.Run(name, func(b *testing.B) {
			m := models.MustNew(name, benchThreads)
			defer m.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kmeans.Parallel(m, ds, 8, 5)
			}
		})
	}
}
