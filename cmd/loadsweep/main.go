// Command loadsweep drives the service scenario with an open-loop
// Poisson load generator: for each selected threading runtime it
// boots an in-process threadserve (no sockets) and sweeps a set of
// offered-load points, reporting per-point tail latency (p50, p99,
// p999), goodput, shed rate, and peak admission-queue depth.
//
// Usage:
//
//	loadsweep [-models omp_for,cilk_for,sharded:cilk_for,cpp_async]
//	          [-kernel sum] [-threads N] [-offered 200,400,800]
//	          [-requests 400] [-warmup -1] [-shards 2]
//	          [-balancer least-loaded] [-queue N] [-timeout 2s]
//	          [-worksize N] [-seed 1] [-out latency.json]
//
// The generator is open-loop: arrivals follow an absolute-time
// Poisson schedule at the offered rate, so a slow server cannot slow
// the arrivals down (no coordinated omission) — overload shows up as
// queueing, shedding, and tail growth instead of a silently reduced
// request rate. -warmup -1 excludes the first tenth of each point's
// arrivals from measurement.
//
// Every swept server runs with its live telemetry registry enabled
// (the production configuration); the registry is scraped between
// offered-load points, each row shows the window's steal count and
// mean worker utilization, and one extra telemetry-off run of the
// reference model anchors the metrics-overhead invariant.
//
// -out writes the full latency report in the benchmark-gate schema;
// `benchgate check -baseline <file>` re-measures it and enforces the
// tail invariants. Ctrl-C stops the sweep at the next point boundary,
// still writes the points measured so far, and exits 130 — the same
// interrupt contract as cmd/threadbench.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"threading/internal/benchgate"
	"threading/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and arguments, so the interrupt
// contract is testable in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		modelsFlag = fs.String("models", "", "comma-separated runtimes to sweep; empty = omp_for,cilk_for,sharded:cilk_for,cpp_async")
		kernel     = fs.String("kernel", "sum", "kernel each request executes (sum, axpy, matvec, pathfinder)")
		threads    = fs.Int("threads", 0, "runtime worker count (0 = GOMAXPROCS)")
		offered    = fs.String("offered", "", "comma-separated offered loads in requests/second; empty = 200,400,800")
		requests   = fs.Int("requests", 0, "arrivals per point (0 = 400)")
		warmup     = fs.Int("warmup", -1, "warmup arrivals excluded per point (-1 = requests/10)")
		shards     = fs.Int("shards", 0, "shard count for sharded: models (0 = 2)")
		balancer   = fs.String("balancer", "", "shard balancer (empty = least-loaded)")
		queue      = fs.Int("queue", 0, "admission queue bound (0 = 4x threads)")
		timeout    = fs.Duration("timeout", 0, "per-request deadline (0 = 2s)")
		worksize   = fs.Int("worksize", 0, "base workload size n (0 = 32768)")
		seed       = fs.Uint64("seed", 0, "arrival-schedule seed (0 = 1)")
		out        = fs.String("out", "", "write the latency report to this path in the benchmark-gate schema")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := benchgate.LatencySuiteConfig{
		Kernel:   *kernel,
		Threads:  *threads,
		Requests: *requests,
		Warmup:   *warmup,
		Shards:   *shards,
		Balancer: *balancer,
		Queue:    *queue,
		Timeout:  *timeout,
		WorkSize: *worksize,
		Seed:     *seed,
	}
	if *modelsFlag != "" {
		cfg.Models = splitList(*modelsFlag)
	}
	if *offered != "" {
		for _, part := range splitList(*offered) {
			n, err := strconv.Atoi(part)
			if err != nil || n < 1 {
				fmt.Fprintf(stderr, "loadsweep: bad offered load %q\n", part)
				return 2
			}
			cfg.Offered = append(cfg.Offered, n)
		}
	}

	// Ctrl-C cancels the sweep at the next point boundary instead of
	// killing the process mid-measurement.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := benchgate.RunLatencySuite(ctx, cfg)
	// Export whatever completed — an interrupted sweep still leaves a
	// gate-able partial artifact.
	if rep != nil && len(rep.Series) > 0 {
		writeTable(stdout, rep)
		if *out != "" {
			if werr := benchgate.WriteFile(*out, rep); werr != nil {
				fmt.Fprintf(stderr, "loadsweep: %v\n", werr)
			} else {
				fmt.Fprintf(stdout, "wrote %s (%d series)\n", *out, len(rep.Series))
			}
		}
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(stderr, "loadsweep: interrupted; partial sweep above")
			return 130
		}
		fmt.Fprintf(stderr, "loadsweep: %v\n", err)
		return 1
	}
	return 0
}

// writeTable renders the sweep as a human table, one row per
// (model, offered) point. The steals and util columns come from the
// telemetry registry scraped between points (Series.Telemetry): steals
// the runtime performed over the point's window and the mean
// per-worker utilization at its end. The reference model's
// telemetry-off twin (the metrics-overhead invariant's subject) shows
// "-" there and is tagged tel-off.
func writeTable(w io.Writer, rep *benchgate.Report) {
	fmt.Fprintf(w, "%-26s %8s %10s %10s %10s %9s %6s %6s %8s %6s\n",
		"model", "offered", "p50", "p99", "p999", "goodput", "shed", "depth", "steals", "util")
	for _, s := range rep.Series {
		name := s.Model
		if !s.Key.Metrics {
			name += " (tel-off)"
		}
		steals, util := "-", "-"
		if s.Telemetry != nil {
			steals = strconv.FormatInt(int64(s.Telemetry["sched.steals"]), 10)
			util = fmt.Sprintf("%.2f", s.Telemetry["worker_util_mean"])
		}
		fmt.Fprintf(w, "%-26s %8d %10s %10s %10s %9.1f %5.1f%% %6d %8s %6s\n",
			name, s.Offered,
			fmtNs(stats.PercentileNs(s.SampleNs, 0.50)),
			fmtNs(stats.PercentileNs(s.SampleNs, 0.99)),
			fmtNs(stats.PercentileNs(s.SampleNs, 0.999)),
			s.Goodput, 100*s.ShedRate, s.QueueDepth, steals, util)
	}
}

func fmtNs(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
