package main

import (
	"bytes"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"threading/internal/benchgate"
)

type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestSweepWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "lat.json")
	var stdout, stderr syncBuffer
	code := run([]string{
		"-models", "omp_for", "-offered", "2000,4000", "-requests", "40",
		"-worksize", "1024", "-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	rep, err := benchgate.ReadFile(out)
	if err != nil {
		t.Fatalf("report unreadable: %v", err)
	}
	// Two swept points plus the telemetry-off twin at the low point.
	if len(rep.Series) != 3 || rep.Config.Scenario != benchgate.Scenario {
		t.Fatalf("report = %d series, scenario %q", len(rep.Series), rep.Config.Scenario)
	}
	if !strings.Contains(stdout.String(), "p999") || !strings.Contains(stdout.String(), "omp_for") {
		t.Errorf("table missing from stdout:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "util") || !strings.Contains(stdout.String(), "(tel-off)") {
		t.Errorf("table missing telemetry columns or the tel-off twin:\n%s", stdout.String())
	}
}

// TestInterruptWritesPartialSweepAndExits130 pins the interrupt
// contract: SIGINT stops the sweep at the next point boundary, still
// writes the completed points, and exits 130 — matching threadbench.
func TestInterruptWritesPartialSweepAndExits130(t *testing.T) {
	// Guard subscription: while registered, SIGINT cannot terminate
	// the test process even if run()'s own handler is not yet
	// installed when the signal lands.
	guard := make(chan os.Signal, 1)
	signal.Notify(guard, os.Interrupt)
	defer signal.Stop(guard)

	out := filepath.Join(t.TempDir(), "lat.json")
	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		// The first point finishes in milliseconds; the second, at
		// 1 rps, would take most of a minute — the interrupt lands there.
		done <- run([]string{
			"-models", "omp_for", "-offered", "5000,1", "-requests", "40",
			"-worksize", "1024", "-out", out,
		}, &stdout, &stderr)
	}()
	time.Sleep(600 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 130 {
			t.Fatalf("exit code = %d, want 130\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after SIGINT")
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Errorf("stderr missing interrupt notice:\n%s", stderr.String())
	}
	// The completed first point was still exported.
	rep, err := benchgate.ReadFile(out)
	if err != nil {
		t.Fatalf("partial report unreadable: %v", err)
	}
	if len(rep.Series) != 1 || rep.Series[0].Offered != 5000 {
		t.Fatalf("partial report = %+v, want the completed 5000 rps point", rep.Series)
	}
}

func TestBadFlagsExitTwo(t *testing.T) {
	var stdout, stderr syncBuffer
	if code := run([]string{"-offered", "abc"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad offered exit = %d, want 2", code)
	}
	if code := run([]string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown flag exit = %d, want 2", code)
	}
}
