// Command loopdist measures the adaptive work-distribution win: it
// runs the paper's flat data kernels under cilk_for with the eager
// (paper-faithful) and lazy (demand-driven) partitioners and records
// per-kernel minimum times plus the lazy-over-eager speedup to a JSON
// file.
//
// Usage:
//
//	loopdist [-threads N] [-reps 5] [-grain 64] [-out BENCH_loopdist.json]
//
// Each kernel runs at two grains: the distribution-stressing -grain
// (many eager chunks, the regime where lazy splitting pays off) and
// grain 0, the cilk_for default heuristic min(2048, ceil(n/8p)).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"threading/internal/kernels"
	"threading/internal/models"
	"threading/internal/worksteal"
)

// row is one (kernel, grain) measurement pair.
type row struct {
	Kernel     string `json:"kernel"`
	N          int    `json:"n"`
	Grain      int    `json:"grain"` // 0 = default heuristic
	EagerMinNs int64  `json:"eager_min_ns"`
	LazyMinNs  int64  `json:"lazy_min_ns"`
	// Speedup is eager/lazy time: >1 means lazy wins.
	Speedup float64 `json:"speedup"`
	// EagerSpawns/LazySplits show why: tasks created per timed run.
	EagerSpawns int64 `json:"eager_spawns_per_run"`
	LazySplits  int64 `json:"lazy_splits_per_run"`
}

// report is the file schema.
type report struct {
	Tool       string `json:"tool"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"`
	Reps       int    `json:"reps"`
	Rows       []row  `json:"rows"`
}

func main() {
	var (
		threads = flag.Int("threads", runtime.GOMAXPROCS(0), "work-stealing pool size")
		reps    = flag.Int("reps", 5, "timed repetitions per cell (minimum is reported)")
		grain   = flag.Int("grain", 64, "distribution-stressing grain size")
		out     = flag.String("out", "BENCH_loopdist.json", "output JSON path")
	)
	flag.Parse()

	const (
		vecN = 1 << 18
		matN = 384
		mulN = 96
	)
	x := kernels.RandomVector(vecN, 11)
	y := kernels.RandomVector(vecN, 12)
	mva := kernels.RandomVector(matN*matN, 13)
	mvx := kernels.RandomVector(matN, 14)
	mvy := make([]float64, matN)
	mma := kernels.RandomVector(mulN*mulN, 15)
	mmb := kernels.RandomVector(mulN*mulN, 16)
	mmc := make([]float64, mulN*mulN)

	kernelSet := []struct {
		name string
		n    int
		run  func(m models.Model)
	}{
		{"axpy", vecN, func(m models.Model) { kernels.Axpy(m, 2.0, x, y) }},
		{"sum", vecN, func(m models.Model) { kernels.Sum(m, 2.0, x) }},
		{"matvec", matN, func(m models.Model) { kernels.Matvec(m, mva, mvx, mvy, matN) }},
		{"matmul", mulN, func(m models.Model) { kernels.Matmul(m, mma, mmb, mmc, mulN) }},
	}

	rep := report{
		Tool:       "cmd/loopdist",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    *threads,
		Reps:       *reps,
	}
	for _, k := range kernelSet {
		for _, g := range []int{*grain, 0} {
			eagerNs, eagerSpawns := measure(*threads, g, worksteal.Eager, *reps, k.run)
			lazyNs, lazySplits := measure(*threads, g, worksteal.Lazy, *reps, k.run)
			r := row{
				Kernel:      k.name,
				N:           k.n,
				Grain:       g,
				EagerMinNs:  eagerNs,
				LazyMinNs:   lazyNs,
				EagerSpawns: eagerSpawns,
				LazySplits:  lazySplits,
			}
			if lazyNs > 0 {
				r.Speedup = float64(eagerNs) / float64(lazyNs)
			}
			rep.Rows = append(rep.Rows, r)
			fmt.Printf("%-8s grain=%-7s eager=%-12v lazy=%-12v lazy speedup=%.2fx\n",
				k.name, grainName(g), time.Duration(eagerNs), time.Duration(lazyNs), r.Speedup)
		}
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loopdist: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "loopdist: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

// measure times reps runs of run under a fresh cilk_for model with the
// given grain and partitioner, returning the minimum wall time and the
// per-run task-creation counter (spawns for eager, splits for lazy).
func measure(threads, grain int, part worksteal.Partitioner, reps int,
	run func(m models.Model)) (minNs, created int64) {

	m := models.NewCilkForGrainPartitioner(threads, grain, part)
	defer m.Close()
	run(m) // warm-up
	m.ResetSchedulerStats()
	for r := 0; r < reps; r++ {
		start := time.Now()
		run(m)
		if ns := time.Since(start).Nanoseconds(); minNs == 0 || ns < minNs {
			minNs = ns
		}
	}
	if s, ok := m.SchedulerStats(); ok {
		if part == worksteal.Lazy {
			created = s.LazySplits / int64(reps)
		} else {
			created = s.Spawns / int64(reps)
		}
	}
	return minNs, created
}

func grainName(g int) string {
	if g == 0 {
		return "default"
	}
	return fmt.Sprint(g)
}
