// Command loopdist measures the adaptive work-distribution win: it
// runs the paper's flat data kernels under cilk_for with the eager
// (paper-faithful) and lazy (demand-driven) partitioners and records
// the raw repetition timings per kernel, plus the lazy-over-eager
// speedup, in the shared benchmark-gate sample schema
// (internal/benchgate), so the file can be fed straight to
// `benchgate compare`.
//
// Usage:
//
//	loopdist [-threads N] [-reps 5] [-grain 64] [-out BENCH_loopdist.json]
//
// Each kernel runs at two grains: the distribution-stressing -grain
// (many eager chunks, the regime where lazy splitting pays off) and
// grain 0, the cilk_for default heuristic min(2048, ceil(n/8p)).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"threading/internal/benchgate"
	"threading/internal/kernels"
	"threading/internal/models"
	"threading/internal/worksteal"
)

func main() {
	var (
		threads = flag.Int("threads", runtime.GOMAXPROCS(0), "work-stealing pool size")
		reps    = flag.Int("reps", 5, "timed repetitions per cell (minimum is reported)")
		grain   = flag.Int("grain", 64, "distribution-stressing grain size")
		out     = flag.String("out", "BENCH_loopdist.json", "output JSON path (benchgate sample schema)")
	)
	flag.Parse()

	const (
		vecN = 1 << 18
		matN = 384
		mulN = 96
	)
	x := kernels.RandomVector(vecN, 11)
	y := kernels.RandomVector(vecN, 12)
	mva := kernels.RandomVector(matN*matN, 13)
	mvx := kernels.RandomVector(matN, 14)
	mvy := make([]float64, matN)
	mma := kernels.RandomVector(mulN*mulN, 15)
	mmb := kernels.RandomVector(mulN*mulN, 16)
	mmc := make([]float64, mulN*mulN)

	kernelSet := []struct {
		name string
		run  func(m models.Model)
	}{
		{"axpy", func(m models.Model) { kernels.Axpy(m, 2.0, x, y) }},
		{"sum", func(m models.Model) { kernels.Sum(m, 2.0, x) }},
		{"matvec", func(m models.Model) { kernels.Matvec(m, mva, mvx, mvy, matN) }},
		{"matmul", func(m models.Model) { kernels.Matmul(m, mma, mmb, mmc, mulN) }},
	}

	rep := benchgate.New("cmd/loopdist", benchgate.RunConfig{
		Threads: *threads,
		Grain:   *grain,
		Scale:   1,
		Reps:    *reps,
		Kernels: []string{"axpy", "sum", "matvec", "matmul"},
	})
	for _, k := range kernelSet {
		for _, g := range []int{*grain, 0} {
			eager, eagerSpawns := measure(*threads, g, worksteal.Eager, *reps, k.run)
			lazy, lazySplits := measure(*threads, g, worksteal.Lazy, *reps, k.run)
			rep.Add(series(k.name, *threads, g, worksteal.Eager, eager,
				map[string]int64{"spawns_per_run": eagerSpawns}))
			rep.Add(series(k.name, *threads, g, worksteal.Lazy, lazy,
				map[string]int64{"lazy_splits_per_run": lazySplits}))
			eagerMin, lazyMin := minNs(eager), minNs(lazy)
			speedup := 0.0
			if lazyMin > 0 {
				speedup = float64(eagerMin) / float64(lazyMin)
			}
			fmt.Printf("%-8s grain=%-7s eager=%-12v lazy=%-12v lazy speedup=%.2fx\n",
				k.name, grainName(g), time.Duration(eagerMin), time.Duration(lazyMin), speedup)
		}
	}

	if err := benchgate.WriteFile(*out, rep); err != nil {
		fmt.Fprintf(os.Stderr, "loopdist: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

func series(kernel string, threads, grain int, part worksteal.Partitioner,
	sampleNs []int64, counters map[string]int64) benchgate.Series {

	return benchgate.Series{
		Key: benchgate.Key{
			Kernel:      kernel,
			Model:       models.CilkFor,
			Threads:     threads,
			Grain:       grain,
			Partitioner: part.String(),
		},
		SampleNs: sampleNs,
		Counters: counters,
	}
}

// measure times reps runs of run under a fresh cilk_for model with the
// given grain and partitioner, returning every wall-time sample and
// the per-run task-creation counter (spawns for eager, splits for
// lazy).
func measure(threads, grain int, part worksteal.Partitioner, reps int,
	run func(m models.Model)) (sampleNs []int64, created int64) {

	m := models.NewCilkForGrainPartitioner(threads, grain, part)
	defer m.Close()
	run(m) // warm-up
	m.ResetSchedulerStats()
	for r := 0; r < reps; r++ {
		start := time.Now()
		run(m)
		sampleNs = append(sampleNs, time.Since(start).Nanoseconds())
	}
	if s, ok := m.SchedulerStats(); ok {
		if part == worksteal.Lazy {
			created = s.LazySplits / int64(reps)
		} else {
			created = s.Spawns / int64(reps)
		}
	}
	return sampleNs, created
}

func minNs(ns []int64) int64 {
	var min int64
	for _, v := range ns {
		if min == 0 || v < min {
			min = v
		}
	}
	return min
}

func grainName(g int) string {
	if g == 0 {
		return "default"
	}
	return fmt.Sprint(g)
}
