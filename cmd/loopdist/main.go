// Command loopdist measures the adaptive work-distribution win: it
// runs the paper's flat data kernels under cilk_for with the eager
// (paper-faithful) and lazy (demand-driven) partitioners and records
// the raw repetition timings per kernel, plus the lazy-over-eager
// speedup, in the shared benchmark-gate sample schema
// (internal/benchgate), so the file can be fed straight to
// `benchgate compare`.
//
// Usage:
//
//	loopdist [-threads N] [-reps 5] [-grain 64] [-pinned]
//	         [-out BENCH_loopdist.json]
//	loopdist -sweep strong|weak [-reps 5] [-pinned] [-out ...]
//
// Each kernel runs at two grains: the distribution-stressing -grain
// (many eager chunks, the regime where lazy splitting pays off) and
// grain 0, the cilk_for default heuristic min(2048, ceil(n/8p)).
//
// -sweep switches to the pSTL-Bench-style scaling suite: the flat
// axpy and sum loops under omp_for and eager cilk_for across a thread
// sweep 1..GOMAXPROCS (powers of two plus GOMAXPROCS). "strong" holds
// the total problem size fixed and reports parallel efficiency
// T(1)/(p*T(p)); "weak" grows the problem with the thread count
// (fixed per-thread size) and reports T(1)/T(p). Efficiency rides on
// each series in the sample schema (Series.Efficiency, Key.Sweep), so
// scaling runs gate through benchgate like fixed-thread runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"threading/internal/benchgate"
	"threading/internal/kernels"
	"threading/internal/models"
	"threading/internal/worksteal"
)

func main() {
	var (
		threads = flag.Int("threads", runtime.GOMAXPROCS(0), "work-stealing pool size")
		reps    = flag.Int("reps", 5, "timed repetitions per cell (minimum is reported)")
		grain   = flag.Int("grain", 64, "distribution-stressing grain size")
		pinned  = flag.Bool("pinned", false, "lock pool workers to OS threads (WithPinnedWorkers)")
		sweep   = flag.String("sweep", "", `scaling sweep: "strong" (fixed total size) or "weak" (fixed per-thread size); empty = partitioner contrast at -threads`)
		out     = flag.String("out", "BENCH_loopdist.json", "output JSON path (benchgate sample schema)")
	)
	flag.Parse()

	switch *sweep {
	case "":
		runDistribution(*threads, *reps, *grain, *pinned, *out)
	case "strong", "weak":
		runSweep(*sweep, *reps, *pinned, *out)
	default:
		fmt.Fprintf(os.Stderr, "loopdist: unknown -sweep %q (want strong or weak)\n", *sweep)
		os.Exit(2)
	}
}

// runDistribution is the original mode: the eager-vs-lazy partitioner
// contrast on every kernel at two grains.
func runDistribution(threads, reps, grain int, pinned bool, out string) {
	const (
		vecN = 1 << 18
		matN = 384
		mulN = 96
	)
	x := kernels.RandomVector(vecN, 11)
	y := kernels.RandomVector(vecN, 12)
	mva := kernels.RandomVector(matN*matN, 13)
	mvx := kernels.RandomVector(matN, 14)
	mvy := make([]float64, matN)
	mma := kernels.RandomVector(mulN*mulN, 15)
	mmb := kernels.RandomVector(mulN*mulN, 16)
	mmc := make([]float64, mulN*mulN)

	kernelSet := []struct {
		name string
		run  func(m models.Model)
	}{
		{"axpy", func(m models.Model) { kernels.Axpy(m, 2.0, x, y) }},
		{"sum", func(m models.Model) { kernels.Sum(m, 2.0, x) }},
		{"matvec", func(m models.Model) { kernels.Matvec(m, mva, mvx, mvy, matN) }},
		{"matmul", func(m models.Model) { kernels.Matmul(m, mma, mmb, mmc, mulN) }},
	}

	rep := benchgate.New("cmd/loopdist", benchgate.RunConfig{
		Threads: threads,
		Grain:   grain,
		Scale:   1,
		Reps:    reps,
		Kernels: []string{"axpy", "sum", "matvec", "matmul"},
		Pinned:  pinned,
	})
	for _, k := range kernelSet {
		for _, g := range []int{grain, 0} {
			eager, eagerSpawns := measure(threads, g, worksteal.Eager, pinned, reps, k.run)
			lazy, lazySplits := measure(threads, g, worksteal.Lazy, pinned, reps, k.run)
			rep.Add(series(k.name, threads, g, worksteal.Eager, pinned, eager,
				map[string]int64{"spawns_per_run": eagerSpawns}))
			rep.Add(series(k.name, threads, g, worksteal.Lazy, pinned, lazy,
				map[string]int64{"lazy_splits_per_run": lazySplits}))
			eagerMin, lazyMin := minNs(eager), minNs(lazy)
			speedup := 0.0
			if lazyMin > 0 {
				speedup = float64(eagerMin) / float64(lazyMin)
			}
			fmt.Printf("%-8s grain=%-7s eager=%-12v lazy=%-12v lazy speedup=%.2fx\n",
				k.name, grainName(g), time.Duration(eagerMin), time.Duration(lazyMin), speedup)
		}
	}
	writeReport(out, rep)
}

// sweepThreads is the scaling-suite thread axis: powers of two up to
// GOMAXPROCS, plus GOMAXPROCS itself when it is not a power of two.
func sweepThreads() []int {
	max := runtime.GOMAXPROCS(0)
	var out []int
	for p := 1; p < max; p *= 2 {
		out = append(out, p)
	}
	return append(out, max)
}

// sweepBaseN is the strong-scaling total (and weak-scaling per-thread)
// iteration count of the flat loops.
const sweepBaseN = 1 << 18

// runSweep is the scaling mode: axpy and sum under the work-sharing
// reference (omp_for) and eager cilk_for at the default grain
// heuristic, across the thread sweep. kind is "strong" or "weak".
func runSweep(kind string, reps int, pinned bool, out string) {
	ps := sweepThreads()
	rep := benchgate.New("cmd/loopdist", benchgate.RunConfig{
		Threads: ps[len(ps)-1],
		Scale:   1,
		Reps:    reps,
		Kernels: []string{"axpy", "sum"},
		Pinned:  pinned,
		Sweep:   kind,
	})

	fmt.Printf("%s scaling, threads %v, base n=%d\n", kind, ps, sweepBaseN)
	fmt.Printf("%-8s %-10s %8s %14s %12s\n", "kernel", "model", "threads", "min", "efficiency")
	for _, kernel := range []string{"axpy", "sum"} {
		for _, model := range []string{models.OMPFor, models.CilkFor} {
			var t1 int64 // min at p=1, the efficiency reference
			for _, p := range ps {
				n := sweepBaseN
				if kind == "weak" {
					n = sweepBaseN * p
				}
				samples := measureSweep(kernel, model, p, pinned, reps, n)
				min := minNs(samples)
				if p == 1 {
					t1 = min
				}
				eff := efficiency(kind, t1, min, p)
				rep.Add(benchgate.Series{
					Key: benchgate.Key{
						Kernel:      kernel,
						Model:       model,
						Threads:     p,
						Grain:       0,
						Partitioner: partitionerTag(model),
						Pinned:      pinned,
						Sweep:       kind,
					},
					SampleNs:   samples,
					Efficiency: eff,
				})
				fmt.Printf("%-8s %-10s %8d %14v %11.2f%%\n",
					kernel, model, p, time.Duration(min), 100*eff)
			}
		}
	}
	writeReport(out, rep)
}

// measureSweep times reps runs of the named flat kernel under one
// model at one thread count over an n-element problem, allocating
// fresh data per cell so weak-scaling sizes do not alias.
func measureSweep(kernel, model string, threads int, pinned bool, reps, n int) []int64 {
	x := kernels.RandomVector(n, 11)
	y := kernels.RandomVector(n, 12)
	m, err := models.New(model, threads, models.WithPinnedWorkers(pinned))
	if err != nil {
		fmt.Fprintf(os.Stderr, "loopdist: %v\n", err)
		os.Exit(2)
	}
	defer m.Close()
	run := func() { kernels.Axpy(m, 2.0, x, y) }
	if kernel == "sum" {
		run = func() { kernels.Sum(m, 2.0, x) }
	}
	run() // warm-up
	var sampleNs []int64
	for r := 0; r < reps; r++ {
		start := time.Now()
		run()
		sampleNs = append(sampleNs, time.Since(start).Nanoseconds())
	}
	return sampleNs
}

// efficiency computes parallel efficiency from the p=1 reference and
// the p-thread minimum: T1/(p*Tp) for strong scaling (perfect speedup
// keeps it at 1), T1/Tp for weak (perfect scaling keeps the time
// flat).
func efficiency(kind string, t1, tp int64, p int) float64 {
	if tp <= 0 || t1 <= 0 {
		return 0
	}
	if kind == "weak" {
		return float64(t1) / float64(tp)
	}
	return float64(t1) / (float64(p) * float64(tp))
}

// partitionerTag is the schema partitioner spelling for the sweep
// models: eager for cilk_for, "-" for omp_for.
func partitionerTag(model string) string {
	if model == models.CilkFor {
		return worksteal.Eager.String()
	}
	return "-"
}

func writeReport(out string, rep *benchgate.Report) {
	if err := benchgate.WriteFile(out, rep); err != nil {
		fmt.Fprintf(os.Stderr, "loopdist: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
}

func series(kernel string, threads, grain int, part worksteal.Partitioner,
	pinned bool, sampleNs []int64, counters map[string]int64) benchgate.Series {

	return benchgate.Series{
		Key: benchgate.Key{
			Kernel:      kernel,
			Model:       models.CilkFor,
			Threads:     threads,
			Grain:       grain,
			Partitioner: part.String(),
			Pinned:      pinned,
		},
		SampleNs: sampleNs,
		Counters: counters,
	}
}

// measure times reps runs of run under a fresh cilk_for model with the
// given grain and partitioner, returning every wall-time sample and
// the per-run task-creation counter (spawns for eager, splits for
// lazy).
func measure(threads, grain int, part worksteal.Partitioner, pinned bool,
	reps int, run func(m models.Model)) (sampleNs []int64, created int64) {

	m, err := models.New(models.CilkFor, threads,
		models.WithGrain(grain), models.WithPartitioner(part),
		models.WithPinnedWorkers(pinned))
	if err != nil {
		fmt.Fprintf(os.Stderr, "loopdist: %v\n", err)
		os.Exit(2)
	}
	defer m.Close()
	run(m) // warm-up
	m.ResetSchedulerStats()
	for r := 0; r < reps; r++ {
		start := time.Now()
		run(m)
		sampleNs = append(sampleNs, time.Since(start).Nanoseconds())
	}
	if s, ok := m.SchedulerStats(); ok {
		if part == worksteal.Lazy {
			created = s.LazySplits / int64(reps)
		} else {
			created = s.Spawns / int64(reps)
		}
	}
	return sampleNs, created
}

func minNs(ns []int64) int64 {
	var min int64
	for _, v := range ns {
		if min == 0 || v < min {
			min = v
		}
	}
	return min
}

func grainName(g int) string {
	if g == 0 {
		return "default"
	}
	return fmt.Sprint(g)
}
