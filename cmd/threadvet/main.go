// Command threadvet checks this module's code against the runtimes'
// concurrency contracts: the invariants that go vet and the race
// detector cannot see but that the paper's results (and PRs 1-2's
// runtime changes) depend on.
//
// Usage:
//
//	threadvet [-json] [-list] [-fix] [-sarif file] [packages]
//
// With no package patterns, ./... is checked. Analyzers:
//
//	joinleak     - futures.Async/NewThread handles never joined
//	ctxdrop      - plain call severing an in-scope context from a Ctx API
//	lockspawn    - task submission while a sync.(RW)Mutex is held
//	atomicmix    - struct fields accessed both atomically and plainly
//	grainconst   - constant grain/cutoff that decays to task-per-element
//	legacyopts   - composite literal of a deprecated runtime Options struct
//	lockorder    - mutex acquisition-order cycles, including across spawn edges
//	blockingtask - pool-executed tasks that transitively block a worker
//	racecapture  - unsynchronized writes to captures in parallel-loop bodies
//	handlereuse  - joins of joined handles; calls on closed pools/teams
//
// A finding is suppressed by a directive on the flagged line (as a
// trailing comment) or on the line immediately above (standalone):
//
//	//threadvet:ignore <analyzer> <reason>
//
// The reason is mandatory and the directive silences exactly the
// named analyzer on exactly one line. -json emits one JSON object
// per diagnostic ({"file","line","col","analyzer","message"}) on
// stdout for CI annotation tooling. -sarif writes a SARIF 2.1.0 log
// to the given file ("-" for stdout) — always, even when there are
// no findings, so CI can upload unconditionally. -fix applies each
// finding's suggested fix (files are rewritten atomically; applying
// fixes twice is a no-op) and reports the findings no fix exists
// for. Exit status: 0 clean (or all findings fixed), 1 findings
// remain, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"threading/internal/analysis/driver"
)

func main() {
	var (
		jsonOut  = flag.Bool("json", false, "emit newline-delimited JSON diagnostics on stdout")
		list     = flag.Bool("list", false, "list analyzers and exit")
		fix      = flag.Bool("fix", false, "apply suggested fixes and report the findings that remain")
		sarifOut = flag.String("sarif", "", "write a SARIF 2.1.0 log to `file` (\"-\" for stdout)")
	)
	flag.Parse()

	if *list {
		for _, a := range driver.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings, err := driver.Run(".", patterns, driver.All)
	if err != nil {
		fmt.Fprintf(os.Stderr, "threadvet: %v\n", err)
		os.Exit(2)
	}

	if *sarifOut != "" {
		if err := writeSARIF(*sarifOut, findings); err != nil {
			fmt.Fprintf(os.Stderr, "threadvet: %v\n", err)
			os.Exit(2)
		}
	}

	if *fix {
		applied, unfixed, err := driver.ApplyFixes(findings)
		if err != nil {
			fmt.Fprintf(os.Stderr, "threadvet: %v\n", err)
			os.Exit(2)
		}
		for _, f := range applied {
			fmt.Fprintf(os.Stderr, "fixed: %s (%s)\n", f, f.Fix.Message)
		}
		findings = unfixed
	}

	if len(findings) == 0 {
		return
	}
	if *jsonOut {
		if err := driver.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintf(os.Stderr, "threadvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		driver.WriteText(os.Stderr, findings)
	}
	os.Exit(1)
}

// writeSARIF writes the log to path, with "-" meaning stdout. An
// empty findings slice still yields a complete, valid log.
func writeSARIF(path string, findings []driver.Finding) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return driver.WriteSARIF(w, findings, driver.All)
}
