// Command threadvet checks this module's code against the runtimes'
// concurrency contracts: the invariants that go vet and the race
// detector cannot see but that the paper's results (and PRs 1-2's
// runtime changes) depend on.
//
// Usage:
//
//	threadvet [-json] [-list] [packages]
//
// With no package patterns, ./... is checked. Analyzers:
//
//	joinleak   - futures.Async/NewThread handles never joined
//	ctxdrop    - plain call severing an in-scope context from a Ctx API
//	lockspawn  - task submission while a sync.(RW)Mutex is held
//	atomicmix  - struct fields accessed both atomically and plainly
//	grainconst - constant grain/cutoff that decays to task-per-element
//	legacyopts - composite literal of a deprecated runtime Options struct
//
// A finding is suppressed by a directive on, or immediately above,
// the flagged line:
//
//	//threadvet:ignore <analyzer> <reason>
//
// The reason is mandatory and the directive silences exactly the
// named analyzer. -json emits one JSON object per diagnostic
// ({"file","line","col","analyzer","message"}) on stdout for CI
// annotation tooling. Exit status: 0 clean, 1 findings, 2 usage or
// load failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"threading/internal/analysis/driver"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit newline-delimited JSON diagnostics on stdout")
		list    = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range driver.All {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings, err := driver.Run(".", patterns, driver.All)
	if err != nil {
		fmt.Fprintf(os.Stderr, "threadvet: %v\n", err)
		os.Exit(2)
	}
	if len(findings) == 0 {
		return
	}
	if *jsonOut {
		if err := driver.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintf(os.Stderr, "threadvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		driver.WriteText(os.Stderr, findings)
	}
	os.Exit(1)
}
