// Command kernelrun executes a single application under one threading
// model and prints its timing plus the runtime's scheduler counters —
// the tool for poking at *why* a model behaves the way the figures
// show (steal counts, failed steals, parks, loop chunks).
//
// Usage:
//
//	kernelrun -app axpy|sum|matvec|matmul|fib|bfs|hotspot|lud|lavamd|srad
//	          [-model cilk_for] [-threads N] [-scale 1.0] [-reps 3]
//	          [-partitioner eager|lazy]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"threading/internal/harness"
	"threading/internal/models"
	"threading/internal/stats"
	"threading/internal/worksteal"
)

// appToFig maps application names to their experiment IDs.
var appToFig = map[string]string{
	"axpy":    "fig1",
	"sum":     "fig2",
	"matvec":  "fig3",
	"matmul":  "fig4",
	"fib":     "fig5",
	"bfs":     "fig6",
	"hotspot": "fig7",
	"lud":     "fig8",
	"lavamd":  "fig9",
	"srad":    "fig10",
}

func main() {
	var (
		app     = flag.String("app", "", "application name (axpy, sum, matvec, matmul, fib, bfs, hotspot, lud, lavamd, srad)")
		model   = flag.String("model", models.OMPFor, "threading model")
		threads = flag.Int("threads", runtime.GOMAXPROCS(0), "degree of parallelism")
		scale   = flag.Float64("scale", 1.0, "workload scale factor")
		reps    = flag.Int("reps", 3, "timed repetitions")
		partStr = flag.String("partitioner", "eager", "loop partitioner for work-stealing models: eager (paper-faithful) or lazy")
	)
	flag.Parse()

	part, err := worksteal.ParsePartitioner(*partStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kernelrun: %v\n", err)
		os.Exit(2)
	}

	figID, ok := appToFig[*app]
	if !ok {
		fmt.Fprintf(os.Stderr, "kernelrun: unknown app %q; have:", *app)
		for name := range appToFig {
			fmt.Fprintf(os.Stderr, " %s", name)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
	e, _ := harness.ByID(figID)
	supported := false
	for _, name := range e.Models {
		if name == *model {
			supported = true
		}
	}
	if !supported {
		fmt.Fprintf(os.Stderr, "kernelrun: %s does not run under %s (models: %v)\n",
			*app, *model, e.Models)
		os.Exit(2)
	}

	w := e.Prepare(*scale)
	fmt.Printf("%s under %s, %d threads — %s\n", *app, *model, *threads, w.Desc)

	m, err := models.New(*model, *threads, models.WithPartitioner(part))
	if err != nil {
		fmt.Fprintf(os.Stderr, "kernelrun: %v\n", err)
		os.Exit(1)
	}
	defer m.Close()

	if w.Check != nil {
		if err := w.Check(m); err != nil {
			fmt.Fprintf(os.Stderr, "kernelrun: verification failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("verification: ok (matches sequential reference)")
	}

	w.Run(m)                // warm-up
	m.ResetSchedulerStats() // counters should reflect timed runs only

	var ts []time.Duration
	for r := 0; r < *reps; r++ {
		start := time.Now()
		w.Run(m)
		ts = append(ts, time.Since(start))
	}
	sample := stats.Summarize(ts)
	fmt.Printf("time: min=%v mean=%v median=%v max=%v (n=%d)\n",
		sample.Min.Round(time.Microsecond), sample.Mean.Round(time.Microsecond),
		sample.Median.Round(time.Microsecond), sample.Max.Round(time.Microsecond), sample.N)

	if s, ok := m.SchedulerStats(); ok {
		fmt.Printf("scheduler counters over %d timed runs:\n", *reps)
		fmt.Printf("  tasks executed: %d\n", s.TasksExecuted)
		fmt.Printf("  spawns:         %d\n", s.Spawns)
		fmt.Printf("  steals:         %d\n", s.Steals)
		fmt.Printf("  failed steals:  %d\n", s.FailedSteals)
		fmt.Printf("  parks:          %d\n", s.Parks)
		fmt.Printf("  barrier waits:  %d\n", s.BarrierWaits)
		fmt.Printf("  loop chunks:    %d\n", s.LoopChunks)
		fmt.Printf("  lazy splits:    %d\n", s.LazySplits)
		fmt.Printf("  batch steals:   %d (%d tasks)\n", s.BatchSteals, s.BatchStolen)
		fmt.Printf("  help-first:     %d\n", s.HelpFirstTasks)
	} else {
		fmt.Println("scheduler counters: none (model has no persistent runtime)")
	}
}
