// Command kernelrun executes a single application under one threading
// model and prints its timing plus the runtime's scheduler counters —
// the tool for poking at *why* a model behaves the way the figures
// show (steal counts, failed steals, parks, loop chunks).
//
// Usage:
//
//	kernelrun -app axpy|sum|matvec|matmul|fib|bfs|hotspot|lud|lavamd|srad
//	          [-model cilk_for] [-threads N] [-scale 1.0] [-reps 3]
//	          [-partitioner eager|lazy] [-shards N] [-balancer name]
//	          [-trace trace.json]
//
// -trace records per-worker scheduler events during the timed runs and
// writes them to the given path; inspect with cmd/traceview, which
// also converts to Chrome/Perfetto timeline JSON.
//
// -shards splits the model's runtime into N shards behind a
// shard.Resolver (-1 selects GOMAXPROCS) routed by -balancer
// (round-robin, random, least-loaded, affinity); the counter report
// then shows the merged totals followed by one group per shard, and a
// -trace capture carries shard-tagged worker lanes (s0/, s1/, ...).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"threading/internal/harness"
	"threading/internal/models"
	"threading/internal/sched"
	"threading/internal/shard"
	"threading/internal/stats"
	"threading/internal/tracez"
	"threading/internal/worksteal"
)

// appToFig maps application names to their experiment IDs.
var appToFig = map[string]string{
	"axpy":    "fig1",
	"sum":     "fig2",
	"matvec":  "fig3",
	"matmul":  "fig4",
	"fib":     "fig5",
	"bfs":     "fig6",
	"hotspot": "fig7",
	"lud":     "fig8",
	"lavamd":  "fig9",
	"srad":    "fig10",
}

func main() {
	var (
		app     = flag.String("app", "", "application name (axpy, sum, matvec, matmul, fib, bfs, hotspot, lud, lavamd, srad)")
		model   = flag.String("model", models.OMPFor, "threading model")
		threads = flag.Int("threads", runtime.GOMAXPROCS(0), "degree of parallelism")
		scale   = flag.Float64("scale", 1.0, "workload scale factor")
		reps    = flag.Int("reps", 3, "timed repetitions")
		partStr = flag.String("partitioner", "eager", "loop partitioner for work-stealing models: eager (paper-faithful) or lazy")
		shards  = flag.Int("shards", 0, "split the model's runtime across N shards (0 = off, -1 = GOMAXPROCS)")
		balStr  = flag.String("balancer", "", "shard balancer: round-robin (default), random, least-loaded, or affinity")
		pinned  = flag.Bool("pinned", false, "lock the model's workers to OS threads (WithPinnedWorkers)")
		traceTo = flag.String("trace", "", "write per-worker scheduler events to this path (view with cmd/traceview)")
	)
	flag.Parse()

	part, err := worksteal.ParsePartitioner(*partStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kernelrun: %v\n", err)
		os.Exit(2)
	}

	figID, ok := appToFig[*app]
	if !ok {
		fmt.Fprintf(os.Stderr, "kernelrun: unknown app %q; have:", *app)
		for name := range appToFig {
			fmt.Fprintf(os.Stderr, " %s", name)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
	e, _ := harness.ByID(figID)
	supported := false
	for _, name := range e.Models {
		if name == *model {
			supported = true
		}
	}
	if !supported {
		fmt.Fprintf(os.Stderr, "kernelrun: %s does not run under %s (models: %v)\n",
			*app, *model, e.Models)
		os.Exit(2)
	}

	w := e.Prepare(*scale)
	fmt.Printf("%s under %s, %d threads — %s\n", *app, *model, *threads, w.Desc)

	var tracer *tracez.Tracer
	if *traceTo != "" {
		tracer = tracez.New(tracez.DefaultCapacity)
	}

	m, err := models.New(*model, *threads,
		models.WithPartitioner(part), models.WithTracer(tracer),
		models.WithShardCount(*shards), models.WithShardBalancer(*balStr),
		models.WithPinnedWorkers(*pinned))
	if err != nil {
		fmt.Fprintf(os.Stderr, "kernelrun: %v\n", err)
		os.Exit(1)
	}
	defer m.Close()
	if ss, ok := m.(models.ShardedStats); ok {
		fmt.Printf("sharding: %d shards, %s balancer\n", ss.NumShards(), ss.ShardBalancer())
	}

	if w.Check != nil {
		if err := w.Check(m); err != nil {
			fmt.Fprintf(os.Stderr, "kernelrun: verification failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("verification: ok (matches sequential reference)")
	}

	w.Run(m) // warm-up
	// Snapshot after the warm-up so the reported counters are the delta
	// covering exactly the timed runs.
	base, _ := m.SchedulerStats()
	var shardBase []shard.Stat
	if ss, ok := m.(models.ShardedStats); ok {
		shardBase = ss.ShardSchedulerStats()
	}

	var ts []time.Duration
	// Label the timed runs so a CPU profile taken against this process
	// attributes samples to the kernel and model under study.
	pprof.Do(context.Background(), pprof.Labels("kernel", *app, "model", *model),
		func(context.Context) {
			for r := 0; r < *reps; r++ {
				start := time.Now()
				w.Run(m)
				ts = append(ts, time.Since(start))
			}
		})
	sample := stats.Summarize(ts)
	fmt.Printf("time: min=%v mean=%v median=%v max=%v (n=%d)\n",
		sample.Min.Round(time.Microsecond), sample.Mean.Round(time.Microsecond),
		sample.Median.Round(time.Microsecond), sample.Max.Round(time.Microsecond), sample.N)

	if s, ok := m.SchedulerStats(); ok {
		fmt.Printf("scheduler counters over %d timed runs:\n", *reps)
		for _, f := range s.Delta(base).Fields() {
			fmt.Printf("  %-14s %d\n", f.Name+":", f.Value)
		}
		if ss, ok := m.(models.ShardedStats); ok {
			baseByID := make(map[int]sched.Snapshot, len(shardBase))
			for _, st := range shardBase {
				baseByID[st.ID] = st.Snapshot
			}
			for _, st := range ss.ShardSchedulerStats() {
				fmt.Printf("  shard s%d:\n", st.ID)
				for _, f := range st.Snapshot.Delta(baseByID[st.ID]).Fields() {
					fmt.Printf("    %-14s %d\n", f.Name+":", f.Value)
				}
			}
		}
	} else {
		fmt.Println("scheduler counters: none (model has no persistent runtime)")
	}

	if tracer != nil {
		snap := tracer.Snapshot()
		snap.Meta["kernel"] = *app
		snap.Meta["model"] = *model
		snap.Meta["threads"] = strconv.Itoa(*threads)
		fmt.Printf("  %-14s %d\n", "trace-dropped:", tracer.Dropped())
		if d := tracer.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "kernelrun: warning: trace rings overwrote %d events; the capture covers only the tail of the run\n", d)
		}
		if err := tracez.WriteFile(*traceTo, snap); err != nil {
			fmt.Fprintf(os.Stderr, "kernelrun: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote trace to %s (inspect with: traceview %s)\n", *traceTo, *traceTo)
	}
}
