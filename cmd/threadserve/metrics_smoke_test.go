package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"
)

// requiredFamilies is the contract the CI metrics-smoke job greps for:
// a loaded threadserve must expose sched counters, queue depth, shed
// totals, per-worker utilization, and latency histograms.
var requiredFamilies = []string{
	"threadserve_sched_total",
	"threadserve_queue_depth",
	"threadserve_queue_cap",
	"threadserve_requests_total",
	"threadserve_request_latency_ns",
	"threadserve_worker_utilization",
	"threadserve_worker_busy_ns",
	"threadserve_trace_dropped_total",
	"threadserve_sched_stalls_total",
}

// TestMetricsSmoke boots the real server binary path (run() over a TCP
// listener), loads it, and scrapes /metrics — the same sequence the CI
// metrics-smoke job performs with curl.
func TestMetricsSmoke(t *testing.T) {
	guard := make(chan os.Signal, 1)
	signal.Notify(guard, os.Interrupt)
	defer signal.Stop(guard)

	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-model", "cilk_for", "-threads", "2", "-worksize", "4096"},
			&stdout, &stderr)
	}()
	waitFor(t, &stdout, "http://")
	var addr string
	for _, line := range strings.Split(stdout.String(), "\n") {
		if i := strings.Index(line, "http://"); i >= 0 {
			addr = strings.TrimSpace(line[i:])
		}
	}

	for i := 0; i < 4; i++ {
		resp, err := http.Get(addr + "/run?kernel=sum")
		if err != nil {
			t.Fatalf("load request: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/run = %d", resp.StatusCode)
		}
	}

	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	body := string(raw)
	for _, fam := range requiredFamilies {
		if !strings.Contains(body, "# TYPE "+fam+" ") {
			t.Errorf("missing family %s", fam)
		}
	}
	// A healthy loaded server: the stall watchdog stays quiet.
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "threadserve_sched_stalls_total") && !strings.HasSuffix(line, " 0") {
			t.Errorf("watchdog tripped on a healthy server: %s", line)
		}
	}

	resp, err = http.Get(addr + "/metrics?format=json")
	if err != nil {
		t.Fatalf("json scrape: %v", err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var m map[string]float64
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("JSON exposition: %v", err)
	}
	if m[`threadserve_requests_total{outcome="completed"}`] < 4 {
		t.Errorf("completed = %v, want >= 4", m[`threadserve_requests_total{outcome="completed"}`])
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 130 {
			t.Fatalf("exit = %d, want 130\nstderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after SIGINT")
	}
}
