// Command threadserve boots the latency-bound service scenario: an
// HTTP server executing the repo's kernels (sum, axpy, matvec, and
// the Rodinia PathFinder DP) on a selectable threading runtime, with
// bounded admission, per-request deadlines, fan-out, and hedged
// requests (see internal/serve).
//
// Usage:
//
//	threadserve [-addr 127.0.0.1:8080] [-model omp_for]
//	            [-threads N] [-shards N] [-balancer least-loaded]
//	            [-pinned] [-grain N] [-queue N] [-timeout 2s]
//	            [-hedge 5ms] [-worksize 32768] [-trace trace.json]
//	            [-metrics] [-metrics-interval 250ms]
//
// Endpoints: /run executes one kernel (?kernel=, ?n=, ?rows=,
// ?timeout_ms=), /fanout forks a sum into ?ways= concurrent parts,
// /hedged duplicates a slow request after ?hedge_ms=, /statz reports
// counters, /healthz reports readiness, and /metrics (on by default;
// -metrics=false disables) exposes the live telemetry registry in
// Prometheus text format (?format=json for the JSON view).
//
// Ctrl-C drains in-flight requests, quiesces the runtime, emits the
// final counters as JSON (the partial report), and exits 130 — the
// same interrupt contract as cmd/threadbench. -trace writes the
// runtime's scheduler events on every exit path.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"threading/internal/models"
	"threading/internal/serve"
	"threading/internal/tracez"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and arguments, so the interrupt
// contract is testable in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("threadserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address")
		model    = fs.String("model", models.OMPFor, "threading runtime: omp_for, omp_task, cilk_for, cilk_spawn, cpp_thread, cpp_async, or sharded:<model>")
		threads  = fs.Int("threads", 0, "runtime worker count (0 = GOMAXPROCS)")
		shards   = fs.Int("shards", 0, "shard count for sharded: models (0 = model default, -1 = GOMAXPROCS)")
		balancer = fs.String("balancer", "", "shard balancer: round-robin (default), random, least-loaded, or affinity")
		pinned   = fs.Bool("pinned", false, "lock runtime workers to OS threads")
		grain    = fs.Int("grain", 0, "loop grain for kernel requests (0 = runtime default)")
		queue    = fs.Int("queue", 0, "admission queue bound; excess requests are shed with 429 (0 = 4x threads)")
		timeout  = fs.Duration("timeout", 0, "default per-request deadline (0 = 2s)")
		hedge    = fs.Duration("hedge", 0, "default /hedged duplicate delay (0 = 5ms)")
		worksize = fs.Int("worksize", 0, "base workload size n (0 = 32768)")
		traceTo  = fs.String("trace", "", "write the runtime's scheduler events to this path (view with cmd/traceview)")
		withMet  = fs.Bool("metrics", true, "serve the live telemetry registry at /metrics (stall watchdog, per-worker utilization, latency histograms)")
		metEvery = fs.Duration("metrics-interval", 0, "telemetry sampling and watchdog interval (0 = 250ms)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var tracer *tracez.Tracer
	if *traceTo != "" {
		tracer = tracez.New(tracez.DefaultCapacity)
		defer func() {
			snap := tracer.Snapshot()
			snap.Meta["tool"] = "threadserve"
			snap.Meta["model"] = *model
			if err := tracez.WriteFile(*traceTo, snap); err != nil {
				fmt.Fprintf(stderr, "threadserve: %v\n", err)
				return
			}
			fmt.Fprintf(stderr, "wrote trace to %s (inspect with: traceview %s)\n", *traceTo, *traceTo)
		}()
	}

	s, err := serve.New(serve.Config{
		Model:           *model,
		Threads:         *threads,
		Shards:          *shards,
		Balancer:        *balancer,
		Pinned:          *pinned,
		Grain:           *grain,
		Queue:           *queue,
		Timeout:         *timeout,
		Hedge:           *hedge,
		WorkSize:        *worksize,
		Tracer:          tracer,
		Metrics:         *withMet,
		MetricsInterval: *metEvery,
	})
	if err != nil {
		fmt.Fprintf(stderr, "threadserve: %v\n", err)
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "threadserve: %v\n", err)
		s.Close()
		return 1
	}
	fmt.Fprintf(stdout, "threadserve: serving %s on http://%s\n", s.Model(), ln.Addr())

	// Ctrl-C stops accepting, drains in-flight requests, and leaves a
	// final stats report — same contract as threadbench.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	interrupted := false
	select {
	case <-ctx.Done():
		interrupted = true
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintf(stderr, "threadserve: shutdown: %v\n", err)
		}
		cancel()
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "threadserve: %v\n", err)
			s.Close()
			return 1
		}
	}

	closeErr := s.Close()
	// The partial report: whatever the server counted before the
	// interrupt, as one JSON object.
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats(false))
	if closeErr != nil {
		fmt.Fprintf(stderr, "threadserve: quiesce: %v\n", closeErr)
		return 1
	}
	if interrupted {
		fmt.Fprintln(stderr, "threadserve: interrupted; final stats above")
		return 130
	}
	return 0
}
