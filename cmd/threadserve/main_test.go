package main

import (
	"bytes"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer is a bytes.Buffer safe for concurrent writer/reader use:
// run() writes from its goroutine while the test polls.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func waitFor(t *testing.T, buf *syncBuffer, substr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Contains(buf.String(), substr) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%q never appeared in output:\n%s", substr, buf.String())
}

// TestInterruptEmitsFinalStatsAndExits130 pins the interrupt
// contract: SIGINT drains the server, emits the final counters as
// JSON, and exits 130 — matching threadbench.
func TestInterruptEmitsFinalStatsAndExits130(t *testing.T) {
	// Guard subscription: while registered, SIGINT cannot terminate
	// the test process even if run()'s own handler is not yet
	// installed when the signal lands.
	guard := make(chan os.Signal, 1)
	signal.Notify(guard, os.Interrupt)
	defer signal.Stop(guard)

	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-model", "cilk_for", "-threads", "2", "-worksize", "1024"},
			&stdout, &stderr)
	}()
	waitFor(t, &stdout, "serving cilk_for on http://")

	// The server is live: one request over real TCP before the
	// interrupt, so the final stats have something to report.
	var addr string
	for _, line := range strings.Split(stdout.String(), "\n") {
		if i := strings.Index(line, "http://"); i >= 0 {
			addr = strings.TrimSpace(line[i:])
		}
	}
	resp, err := http.Get(addr + "/run?kernel=sum")
	if err != nil {
		t.Fatalf("live request: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live request = %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 130 {
			t.Fatalf("exit code = %d, want 130\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after SIGINT")
	}
	out := stdout.String()
	if !strings.Contains(out, `"accepted": 1`) || !strings.Contains(out, `"completed": 1`) {
		t.Errorf("final stats report missing from stdout:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Errorf("stderr missing interrupt notice:\n%s", stderr.String())
	}
}

func TestBadFlagsExitTwo(t *testing.T) {
	var stdout, stderr syncBuffer
	if code := run([]string{"-model", "no_such_model"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown model exit = %d, want 2", code)
	}
	if code := run([]string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown flag exit = %d, want 2", code)
	}
}

func TestTraceWrittenOnExit(t *testing.T) {
	guard := make(chan os.Signal, 1)
	signal.Notify(guard, os.Interrupt)
	defer signal.Stop(guard)

	trace := t.TempDir() + "/trace.json"
	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-worksize", "1024", "-trace", trace}, &stdout, &stderr)
	}()
	waitFor(t, &stdout, "serving")
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after SIGINT")
	}
	if _, err := os.Stat(trace); err != nil {
		t.Fatalf("trace artifact not written: %v\nstderr: %s", err, stderr.String())
	}
}
