// Command feattable prints the qualitative comparison tables of
// "Comparison of Threading Programming Models" (Salehian, Liu, Yan;
// 2017): Table I (parallelism patterns), Table II (memory-hierarchy
// abstraction and synchronization) and Table III (mutual exclusion,
// language bindings, error handling, tool support), covering OpenMP,
// Cilk Plus, TBB, OpenACC, CUDA, OpenCL, C++11 and PThreads.
//
// Usage:
//
//	feattable [-table 1,2,3] [-rank]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"threading/internal/core"
	"threading/internal/features"
)

func main() {
	var (
		tables = flag.String("table", "", "comma-separated table numbers (1..3); empty = all")
		rank   = flag.Bool("rank", false, "also print APIs ranked by feature count")
	)
	flag.Parse()

	var nums []int
	if *tables != "" {
		for _, part := range strings.Split(*tables, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "feattable: bad table number %q\n", part)
				os.Exit(2)
			}
			nums = append(nums, n)
		}
	}
	if err := core.FeatureReport(nums, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "feattable: %v\n", err)
		os.Exit(1)
	}
	if *rank {
		fmt.Println("APIs by number of supported features (paper: OpenMP is the most comprehensive):")
		for i, api := range features.Ranking() {
			fmt.Printf("  %d. %-9s %d features\n", i+1, api, features.FeatureCount(api))
		}
	}
}
