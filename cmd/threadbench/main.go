// Command threadbench regenerates the performance figures of
// "Comparison of Threading Programming Models" (Salehian, Liu, Yan;
// 2017): five micro-kernels (Axpy, Sum, Matvec, Matmul, Fibonacci)
// and five Rodinia applications (BFS, HotSpot, LUD, LavaMD, SRAD),
// each executed under six threading-model configurations across a
// sweep of thread counts.
//
// Usage:
//
//	threadbench [-fig fig1,fig5] [-threads 1,2,4] [-reps 3]
//	            [-scale 1.0] [-partitioner eager|lazy] [-stats]
//	            [-shards 4] [-balancer least-loaded]
//	            [-verify] [-csv] [-out samples.json] [-list]
//	            [-trace trace.json] [-cpuprofile cpu.pb.gz]
//	            [-memprofile mem.pb.gz]
//
// With no -fig, all ten experiments run. -scale shrinks or grows the
// workloads relative to the laptop-scale defaults (the paper's sizes
// correspond to roughly -scale 12 for the vector kernels).
// -partitioner selects how the work-stealing models decompose loops:
// "eager" (default) is the paper-faithful cilk_for decomposition and
// must be used when reproducing the figures; "lazy" enables
// demand-driven splitting. -stats appends per-cell scheduler counters
// to the tables. -shards splits each pooled model's runtime into N
// shards behind a shard.Resolver (-1 selects GOMAXPROCS; models
// without a persistent runtime ignore it) and -balancer picks how
// chunks are routed across shards; with -stats the tables then break
// the counters out per shard. -out additionally writes every raw repetition in the
// benchmark-gate sample schema (internal/benchgate), so even a smoke
// run leaves an artifact `benchgate compare` can consume.
//
// Observability: -trace records per-worker scheduler events across the
// whole sweep and writes them as raw tracez JSON (inspect or convert
// with cmd/traceview); combined with -stats, the counter tables gain a
// "dropped" column counting events the rings overwrote per cell, and a
// nonzero sweep-wide total is warned about on stderr. -cpuprofile/-memprofile write standard pprof
// profiles; worker goroutines carry pprof labels (runtime, worker) so
// `go tool pprof -tagfocus` can isolate one runtime's workers. All
// three artifacts are written even when the sweep is interrupted with
// Ctrl-C, so a partial run still leaves something to inspect.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"

	"threading/internal/benchgate"
	"threading/internal/core"
	"threading/internal/harness"
	"threading/internal/shard"
	"threading/internal/tracez"
	"threading/internal/worksteal"
)

func main() {
	// All work happens in run so deferred artifact writes (profiles,
	// trace) execute on every exit path, including interrupt.
	os.Exit(run())
}

func run() int {
	var (
		figs    = flag.String("fig", "", "comma-separated experiment IDs (fig1..fig10); empty = all")
		threads = flag.String("threads", "", "comma-separated thread counts; empty = 1,2,4,... up to 2*GOMAXPROCS")
		reps    = flag.Int("reps", 3, "timed repetitions per cell (minimum is reported)")
		scale   = flag.Float64("scale", 1.0, "workload scale factor")
		partStr = flag.String("partitioner", "eager", "loop partitioner for work-stealing models: eager (paper-faithful) or lazy")
		stat    = flag.Bool("stats", false, "append per-cell scheduler counters to the tables")
		verify  = flag.Bool("verify", false, "verify each model against the sequential reference before timing")
		csv     = flag.Bool("csv", false, "emit CSV instead of tables")
		out     = flag.String("out", "", "also write raw samples to this path in the benchmark-gate schema (compare with cmd/benchgate)")
		list    = flag.Bool("list", false, "list experiments and exit")
		shards  = flag.Int("shards", 0, "split each pooled model across N runtime shards (0 = off, -1 = GOMAXPROCS)")
		balStr  = flag.String("balancer", "", "shard balancer: round-robin (default), random, least-loaded, or affinity")
		pinned  = flag.Bool("pinned", false, "lock pooled runtimes' workers to OS threads (WithPinnedWorkers)")
		traceTo = flag.String("trace", "", "write per-worker scheduler events to this path (view with cmd/traceview)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProf = flag.String("memprofile", "", "write a heap profile to this path on exit")
	)
	flag.Parse()

	part, err := worksteal.ParsePartitioner(*partStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "threadbench: %v\n", err)
		return 2
	}
	if _, err := shard.ParseBalancer(*balStr); err != nil {
		fmt.Fprintf(os.Stderr, "threadbench: %v\n", err)
		return 2
	}

	if *list {
		for _, id := range harness.IDs() {
			e, _ := harness.ByID(id)
			fmt.Printf("%-6s %s\n       paper: %s\n", e.ID, e.Title, e.Finding)
		}
		return 0
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "threadbench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "threadbench: start cpu profile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote cpu profile to %s\n", *cpuProf)
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "threadbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "threadbench: write heap profile: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "wrote heap profile to %s\n", *memProf)
		}()
	}

	var tracer *tracez.Tracer
	if *traceTo != "" {
		tracer = tracez.New(tracez.DefaultCapacity)
		defer func() {
			snap := tracer.Snapshot()
			snap.Meta["tool"] = "threadbench"
			snap.Meta["scale"] = fmt.Sprintf("%g", *scale)
			if err := tracez.WriteFile(*traceTo, snap); err != nil {
				fmt.Fprintf(os.Stderr, "threadbench: %v\n", err)
				return
			}
			if d := tracer.Dropped(); d > 0 {
				fmt.Fprintf(os.Stderr, "threadbench: warning: trace rings overwrote %d events; the capture covers only the tail of the sweep\n", d)
			}
			fmt.Fprintf(os.Stderr, "wrote trace to %s (inspect with: traceview %s)\n", *traceTo, *traceTo)
		}()
	}

	cfg := core.SuiteConfig{
		Reps:        *reps,
		Scale:       *scale,
		Verify:      *verify,
		Partitioner: part,
		Stats:       *stat,
		CSV:         *csv,
		KeepSamples: *out != "",
		Tracer:      tracer,
		Shards:      *shards,
		Balancer:    *balStr,
		Pinned:      *pinned,
	}
	if *figs != "" {
		cfg.Experiments = strings.Split(*figs, ",")
	}
	if *threads != "" {
		for _, part := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "threadbench: bad thread count %q\n", part)
				return 2
			}
			cfg.Threads = append(cfg.Threads, n)
		}
	}

	// Ctrl-C cancels the suite at the next measurement boundary
	// instead of killing the process mid-sweep.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	results, err := core.RunSuiteCtx(ctx, cfg, os.Stdout)
	// Export whatever completed — an interrupted sweep still leaves a
	// compare-able partial artifact.
	if *out != "" && len(results) > 0 {
		rep := benchgate.FromResults(results, "cmd/threadbench", *reps, *scale)
		if werr := benchgate.WriteFile(*out, rep); werr != nil {
			fmt.Fprintf(os.Stderr, "threadbench: %v\n", werr)
		} else {
			fmt.Printf("wrote %s (%d series)\n", *out, len(rep.Series))
		}
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "threadbench: interrupted; partial results above")
			return 130
		}
		fmt.Fprintf(os.Stderr, "threadbench: %v\n", err)
		return 1
	}
	if !*csv {
		fmt.Println("summary (at the largest thread count):")
		for _, r := range results {
			s := core.Summarize(r)
			fmt.Printf("  %-6s best=%-11s worst=%-11s worst/best=%.2fx\n",
				s.Experiment, s.Best, s.Worst, s.WorstOverBest)
		}
	}
	return 0
}
