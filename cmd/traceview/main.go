// Command traceview inspects a raw scheduler trace produced by the
// -trace flag of threadbench or kernelrun. It prints a text summary
// (per-worker utilization, steal-latency and chunk-size histograms,
// load-imbalance ratio — plus a per-request scheduler-cost table when
// the trace carries request ids) and converts the trace to Chrome
// trace-event JSON for chrome://tracing or ui.perfetto.dev.
//
// Usage:
//
//	traceview [-chrome out.json] [-summary=false] trace.json
//
// -chrome defaults to the input path with a .chrome.json suffix; pass
// -chrome "" to skip the conversion and only print the summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"threading/internal/tracez"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		chrome  = flag.String("chrome", "\x00", `write Chrome trace-event JSON here (default: <input>.chrome.json; "" disables)`)
		summary = flag.Bool("summary", true, "print the derived-metrics text summary")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: traceview [-chrome out.json] [-summary=false] trace.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return 2
	}
	in := flag.Arg(0)

	tr, err := tracez.ReadFile(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
		return 1
	}

	chromeOut := *chrome
	if chromeOut == "\x00" {
		chromeOut = strings.TrimSuffix(in, ".json") + ".chrome.json"
	}
	if chromeOut != "" {
		f, err := os.Create(chromeOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
			return 1
		}
		if err := tracez.ExportChrome(f, tr); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s (load in chrome://tracing or ui.perfetto.dev)\n", chromeOut)
	}

	if *summary {
		if len(tr.Meta) > 0 {
			fmt.Printf("trace meta:")
			for _, k := range sortedKeys(tr.Meta) {
				fmt.Printf(" %s=%s", k, tr.Meta[k])
			}
			fmt.Println()
		}
		tracez.Summarize(tr).Render(os.Stdout)
		if costs := tracez.SummarizeRequests(tr); len(costs) > 0 {
			fmt.Println()
			tracez.RenderRequests(os.Stdout, costs)
		}
	}
	return 0
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
