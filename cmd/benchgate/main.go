// Command benchgate is the statistical benchmark-regression gate: it
// records schema-versioned sample baselines, compares two recorded
// runs with a Mann-Whitney U test plus a minimum-effect threshold,
// and checks fresh samples against the committed baseline together
// with the paper's directional invariants (work-sharing beats eager
// work-stealing on flat loops; lazy splitting beats eager at stress
// grain).
//
// Usage:
//
//	benchgate record  [-out BENCH_kernels.json] [-kernels axpy,sum,matvec]
//	                  [-threads N] [-reps 7] [-grain 64] [-scale 0.1]
//	                  [-shards N] [-balancer least-loaded] [-pinned]
//	benchgate compare [-alpha 0.05] [-ratio 1.1] [-json] old.json new.json
//	benchgate check   [-baseline BENCH_kernels.json] [-reps N]
//	                  [-alpha 0.05] [-ratio 1.3] [-json] [-out fresh.json]
//	                  [-requests N] [-points N]
//
// record runs the kernel suite through the benchmark harness and
// writes every raw repetition with environment metadata (go version,
// GOMAXPROCS, rep count). compare classifies each shared key as
// improved / regressed / unchanged; a verdict only leaves unchanged
// when the U test rejects equality at -alpha AND both min and median
// moved by at least -ratio. check re-measures using the baseline's
// recorded configuration, compares against the baseline, and asserts
// the directional invariants on both sample sets; when the baseline
// was recorded in a different environment (platform or GOMAXPROCS),
// absolute regressions are reported but only invariants gate.
//
// check detects latency baselines (written by cmd/loadsweep; config
// carries a scenario) and re-measures them through the open-loop
// service sweep instead of the kernel suite, gating the tail
// invariants (low-load p99 parity, sharded-tail overhead) on both
// sample sets. -requests and -points shrink the fresh sweep for a CI
// smoke lane: -points keeps only the N lowest offered points, where
// every tail invariant is defined, so the gate's coverage survives
// the trim.
//
// -json emits one JSON object per verdict (and per invariant result
// for check) on stdout. Exit status: 0 clean, 1 regressions or
// violated invariants, 2 usage or load failure — the same convention
// as threadvet. SIGINT exits 130.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"threading/internal/benchgate"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const usage = `usage: benchgate <record|compare|check> [flags]

  record   run the kernel suite and write a baseline sample file
  compare  classify old.json -> new.json per key (improved/regressed/unchanged)
  check    run fresh samples against the committed baseline + invariants
`

// run dispatches the subcommand and returns the process exit code:
// 0 clean, 1 findings (regressions or violated invariants), 2 usage
// or load failure, 130 interrupted.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprint(stderr, usage)
		return 2
	}
	switch args[0] {
	case "record":
		return runRecord(args[1:], stdout, stderr)
	case "compare":
		return runCompare(args[1:], stdout, stderr)
	case "check":
		return runCheck(args[1:], stdout, stderr)
	case "help", "-h", "-help", "--help":
		fmt.Fprint(stdout, usage)
		return 0
	default:
		fmt.Fprintf(stderr, "benchgate: unknown mode %q\n%s", args[0], usage)
		return 2
	}
}

func signalCtx() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

func runRecord(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate record", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out     = fs.String("out", "BENCH_kernels.json", "output sample file")
		kernels = fs.String("kernels", "", "comma-separated kernels (axpy,sum,matvec,matmul,fib); empty = default suite")
		threads = fs.Int("threads", 0, "pool size; 0 = GOMAXPROCS")
		reps    = fs.Int("reps", 0, "timed repetitions per series; 0 = 7")
		grain   = fs.Int("grain", 0, "distribution-stressing grain; 0 = 64")
		scale   = fs.Float64("scale", 0, "workload scale factor; 0 = 0.1")
		shards  = fs.Int("shards", 0, "also measure sharded:cilk_for split across N shards (0 = off, -1 = GOMAXPROCS)")
		balStr  = fs.String("balancer", "", "balancer for the sharded series; empty = least-loaded")
		pinned  = fs.Bool("pinned", false, "also measure a pinned-worker twin of the stress-grain eager cilk_for series")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cfg := benchgate.SuiteConfig{
		Threads: *threads, Reps: *reps, Grain: *grain, Scale: *scale,
		Shards: *shards, Balancer: *balStr, Pinned: *pinned,
	}
	if *kernels != "" {
		cfg.Kernels = splitList(*kernels)
	}
	ctx, stop := signalCtx()
	defer stop()
	rep, err := benchgate.RunSuite(ctx, cfg)
	if err != nil {
		return suiteFailure(err, stderr)
	}
	if err := benchgate.WriteFile(*out, rep); err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}
	writeReportSummary(stdout, rep)
	fmt.Fprintf(stdout, "wrote %s (%d series, %d reps each)\n", *out, len(rep.Series), rep.Config.Reps)
	return 0
}

func runCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		alpha   = fs.Float64("alpha", 0, "Mann-Whitney significance level; 0 = 0.05")
		ratio   = fs.Float64("ratio", 0, "minimum effect ratio for a verdict to flip; 0 = 1.10")
		jsonOut = fs.Bool("json", false, "emit newline-delimited JSON verdicts on stdout")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintf(stderr, "benchgate compare: want exactly two sample files, got %d\n", fs.NArg())
		return 2
	}
	oldRep, err := benchgate.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}
	newRep, err := benchgate.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}
	opt := benchgate.Options{Alpha: *alpha, MinRatio: *ratio}
	verdicts, warnings := benchgate.Compare(oldRep, newRep, opt)
	for _, w := range warnings {
		fmt.Fprintf(stderr, "benchgate: warning: %s\n", w)
	}
	if *jsonOut {
		if err := benchgate.WriteVerdictJSON(stdout, verdicts); err != nil {
			fmt.Fprintf(stderr, "benchgate: %v\n", err)
			return 2
		}
	} else {
		benchgate.WriteVerdictTable(stdout, verdicts)
	}
	if benchgate.AnyRegressed(verdicts) {
		return 1
	}
	return 0
}

func runCheck(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate check", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baseline = fs.String("baseline", "BENCH_kernels.json", "committed baseline sample file")
		reps     = fs.Int("reps", 0, "timed repetitions for the fresh run; 0 = the baseline's rep count")
		alpha    = fs.Float64("alpha", 0, "Mann-Whitney significance level; 0 = 0.05")
		ratio    = fs.Float64("ratio", 0, "minimum effect ratio; 0 = 1.10 (CI uses 1.3 so shared runners don't flap)")
		jsonOut  = fs.Bool("json", false, "emit newline-delimited JSON verdicts and invariant results on stdout")
		out      = fs.String("out", "", "also write the fresh samples to this path (CI artifact)")
		requests = fs.Int("requests", 0, "latency baselines: arrivals per sweep point for the fresh run; 0 = the baseline's count")
		points   = fs.Int("points", 0, "latency baselines: re-measure only the N lowest offered points (0 = all); the tail invariants live at the lowest point, so they still gate")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	base, err := benchgate.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}
	opt := benchgate.Options{Alpha: *alpha, MinRatio: *ratio}
	invs := benchgate.InvariantsFor(base.Config)

	// The baseline must itself satisfy the paper's orderings (or, for
	// a latency baseline, the tail claims): a doctored or stale
	// baseline that inverts them fails the gate before any fresh
	// measurement is trusted against it.
	baseInv := benchgate.CheckInvariants(base, invs, opt)

	ctx, stop := signalCtx()
	defer stop()
	var fresh *benchgate.Report
	if base.Config.Scenario != "" {
		// Latency baseline: re-measure through the open-loop sweep with
		// the baseline's recorded configuration. -requests and -points
		// shrink a CI smoke run; trimmed points show up as "removed"
		// verdicts, which do not gate.
		kernel := ""
		if len(base.Config.Kernels) > 0 {
			kernel = base.Config.Kernels[0]
		}
		cfg := benchgate.LatencySuiteConfig{
			Models:   base.Config.Models,
			Kernel:   kernel,
			Threads:  base.Config.Threads,
			Offered:  lowestPoints(base.Config.Offered, *points),
			Requests: base.Config.Requests,
			Warmup:   -1,
			Shards:   base.Config.Shards,
			Balancer: base.Config.Balancer,
			Seed:     base.Config.Seed,
		}
		if *requests > 0 {
			cfg.Requests = *requests
		}
		fresh, err = benchgate.RunLatencySuite(ctx, cfg)
	} else {
		cfg := benchgate.SuiteConfig{
			Kernels:  base.Config.Kernels,
			Threads:  base.Config.Threads,
			Reps:     base.Config.Reps,
			Grain:    base.Config.Grain,
			Scale:    base.Config.Scale,
			Shards:   base.Config.Shards,
			Balancer: base.Config.Balancer,
			Pinned:   base.Config.Pinned,
		}
		if *reps > 0 {
			cfg.Reps = *reps
		}
		fresh, err = benchgate.RunSuite(ctx, cfg)
	}
	if err != nil {
		return suiteFailure(err, stderr)
	}
	if *out != "" {
		if err := benchgate.WriteFile(*out, fresh); err != nil {
			fmt.Fprintf(stderr, "benchgate: %v\n", err)
			return 2
		}
	}
	verdicts, warnings := benchgate.Compare(base, fresh, opt)
	freshInv := benchgate.CheckInvariants(fresh, invs, opt)
	for _, w := range warnings {
		fmt.Fprintf(stderr, "benchgate: warning: %s\n", w)
	}

	comparable := base.Env.Comparable(fresh.Env)
	if *jsonOut {
		if err := benchgate.WriteVerdictJSON(stdout, verdicts); err != nil {
			fmt.Fprintf(stderr, "benchgate: %v\n", err)
			return 2
		}
		if err := benchgate.WriteInvariantJSON(stdout, baseInv); err != nil {
			fmt.Fprintf(stderr, "benchgate: %v\n", err)
			return 2
		}
		if err := benchgate.WriteInvariantJSON(stdout, freshInv); err != nil {
			fmt.Fprintf(stderr, "benchgate: %v\n", err)
			return 2
		}
	} else {
		benchgate.WriteVerdictTable(stdout, verdicts)
		fmt.Fprintln(stdout)
		benchgate.WriteInvariantTable(stdout, "baseline", baseInv)
		benchgate.WriteInvariantTable(stdout, "fresh", freshInv)
	}

	failed := benchgate.AnyViolated(baseInv) || benchgate.AnyViolated(freshInv)
	if benchgate.AnyRegressed(verdicts) {
		if comparable {
			failed = true
		} else {
			fmt.Fprintln(stderr, "benchgate: note: regressions vs a baseline from a different environment are advisory; gating on invariants only")
		}
	}
	if failed {
		return 1
	}
	return 0
}

// lowestPoints keeps the n lowest offered points (all when n <= 0),
// preserving order. The tail invariants are defined at the lowest
// point, so a trimmed smoke check still exercises every gated claim.
func lowestPoints(offered []int, n int) []int {
	if n <= 0 || n >= len(offered) {
		return offered
	}
	sorted := append([]int(nil), offered...)
	sort.Ints(sorted)
	keep := make(map[int]bool, n)
	for _, o := range sorted[:n] {
		keep[o] = true
	}
	var out []int
	for _, o := range offered {
		if keep[o] {
			out = append(out, o)
		}
	}
	return out
}

// suiteFailure maps a suite error to an exit code: 130 for an
// interrupt (mirroring threadbench), 2 otherwise.
func suiteFailure(err error, stderr io.Writer) int {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(stderr, "benchgate: interrupted")
		return 130
	}
	fmt.Fprintf(stderr, "benchgate: %v\n", err)
	return 2
}

func writeReportSummary(w io.Writer, rep *benchgate.Report) {
	fmt.Fprintf(w, "%-34s %12s %12s %26s\n", "key", "min", "median", "95% CI (median)")
	for _, s := range rep.Series {
		sum := benchgate.Summarize(s.SampleNs)
		fmt.Fprintf(w, "%-34s %12s %12s %12s %-12s\n",
			s.Key,
			time.Duration(sum.MinNs).Round(time.Microsecond),
			time.Duration(sum.MedianNs).Round(time.Microsecond),
			time.Duration(sum.CILoNs).Round(time.Microsecond),
			"- "+time.Duration(sum.CIHiNs).Round(time.Microsecond).String())
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
