package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"threading/internal/benchgate"
	"threading/internal/models"
)

// writeReport persists a report for the CLI under test.
func writeReport(t *testing.T, path string, rep *benchgate.Report) {
	t.Helper()
	if err := benchgate.WriteFile(path, rep); err != nil {
		t.Fatal(err)
	}
}

// healthy builds a small report consistent with the paper's
// orderings at threads=1, grain=64.
func healthy() *benchgate.Report {
	rep := benchgate.New("test", benchgate.RunConfig{
		Threads: 1, Grain: 64, Scale: 0.01, Reps: 6, Kernels: []string{"axpy", "sum"},
	})
	for _, kernel := range []string{"axpy", "sum"} {
		rep.Add(benchgate.Series{
			Key:      benchgate.Key{Kernel: kernel, Model: models.OMPFor, Threads: 1, Grain: 0, Partitioner: "-"},
			SampleNs: []int64{100, 101, 102, 103, 104, 105},
		})
		rep.Add(benchgate.Series{
			Key:      benchgate.Key{Kernel: kernel, Model: models.CilkFor, Threads: 1, Grain: 64, Partitioner: "eager"},
			SampleNs: []int64{400, 401, 402, 403, 404, 405},
		})
		rep.Add(benchgate.Series{
			Key:      benchgate.Key{Kernel: kernel, Model: models.CilkFor, Threads: 1, Grain: 64, Partitioner: "lazy"},
			SampleNs: []int64{110, 111, 112, 113, 114, 115},
		})
	}
	return rep
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// Exit-code contract: 0 clean, 1 findings, 2 usage/load failure —
// pinned so CI scripts can rely on it.
func TestExitCodeUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                      // no mode
		{"frobnicate"},          // unknown mode
		{"compare"},             // missing files
		{"compare", "only.one"}, // one file
		{"compare", "-bogusflag", "a", "b"},
		{"record", "-bogusflag"},
		{"check", "-baseline", "does-not-exist.json"},
	} {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
	if code, _, _ := runCLI(t, "help"); code != 0 {
		t.Error("help should exit 0")
	}
}

func TestExitCodeCompareUnchangedIsZero(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	writeReport(t, a, healthy())
	writeReport(t, b, healthy())
	code, out, _ := runCLI(t, "compare", a, b)
	if code != 0 {
		t.Fatalf("compare identical = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "unchanged") {
		t.Errorf("table lacks unchanged verdicts:\n%s", out)
	}
}

func TestExitCodeCompareRegressionIsOne(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	writeReport(t, a, healthy())
	slow := healthy()
	s := slow.Find(benchgate.Key{Kernel: "axpy", Model: models.OMPFor, Threads: 1, Grain: 0, Partitioner: "-"})
	for i := range s.SampleNs {
		s.SampleNs[i] *= 3
	}
	writeReport(t, b, slow)
	if code, _, _ := runCLI(t, "compare", a, b); code != 1 {
		t.Errorf("compare with regression = %d, want 1", code)
	}
	// Same pair reversed is an improvement: clean exit.
	if code, _, _ := runCLI(t, "compare", b, a); code != 0 {
		t.Errorf("compare with improvement = %d, want 0", code)
	}
}

func TestCompareJSONShapeAndExitCode(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	writeReport(t, a, healthy())
	slow := healthy()
	for i := range slow.Series {
		for j := range slow.Series[i].SampleNs {
			slow.Series[i].SampleNs[j] *= 3
		}
	}
	writeReport(t, b, slow)
	code, out, _ := runCLI(t, "compare", "-json", a, b)
	if code != 1 {
		t.Fatalf("compare -json = %d, want 1", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d NDJSON lines, want 6:\n%s", len(lines), out)
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		for _, field := range []string{"kernel", "model", "outcome", "p", "min_ratio"} {
			if _, ok := m[field]; !ok {
				t.Errorf("verdict missing %q: %s", field, line)
			}
		}
		if m["outcome"] != string(benchgate.Regressed) {
			t.Errorf("outcome = %v, want regressed", m["outcome"])
		}
	}
}

// check against a baseline doctored to invert the
// work-sharing-vs-work-stealing ordering must exit 1, whatever the
// fresh measurements say: the baseline itself no longer encodes the
// paper's claim.
func TestExitCodeCheckDoctoredBaselineIsOne(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the measurement suite")
	}
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	doctored := healthy()
	doctored.Config.Reps = 2 // keep the fresh run cheap
	for _, kernel := range []string{"axpy", "sum"} {
		s := doctored.Find(benchgate.Key{Kernel: kernel, Model: models.OMPFor, Threads: 1, Grain: 0, Partitioner: "-"})
		for i := range s.SampleNs {
			s.SampleNs[i] *= 100 // work-sharing now loses: inverted ordering
		}
	}
	writeReport(t, baseline, doctored)
	code, out, errOut := runCLI(t, "check", "-baseline", baseline, "-reps", "2")
	if code != 1 {
		t.Fatalf("check doctored baseline = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "VIOLATED") {
		t.Errorf("check output lacks violation marker:\n%s", out)
	}
}

func TestCheckWritesFreshArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the measurement suite")
	}
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	fresh := filepath.Join(dir, "fresh.json")
	base := healthy()
	base.Config.Reps = 2
	writeReport(t, baseline, base)
	// Exit code is noise-dependent (synthetic baseline vs real
	// timings); only the artifact contract is under test here.
	runCLI(t, "check", "-baseline", baseline, "-reps", "2", "-out", fresh)
	rep, err := benchgate.ReadFile(fresh)
	if err != nil {
		t.Fatalf("fresh artifact unreadable: %v", err)
	}
	// The fresh run measures the full per-kernel spec grid (5 series
	// per kernel), regardless of how sparse the baseline was.
	if want := 2 * 5; len(rep.Series) != want {
		t.Errorf("fresh artifact has %d series, want %d", len(rep.Series), want)
	}
}

func TestRecordWritesValidReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the measurement suite")
	}
	path := filepath.Join(t.TempDir(), "rec.json")
	code, out, errOut := runCLI(t, "record", "-out", path,
		"-kernels", "axpy", "-reps", "2", "-scale", "0.01")
	if code != 0 {
		t.Fatalf("record = %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	rep, err := benchgate.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != benchgate.SchemaVersion || rep.Env.GoVersion == "" || rep.Env.GOMAXPROCS < 1 {
		t.Errorf("recorded env/schema incomplete: %+v", rep)
	}
	if rep.Config.Reps != 2 || len(rep.Series) != 5 {
		t.Errorf("recorded config/series unexpected: %+v", rep.Config)
	}
}
