// Command spanview is a Cilkview-style scalability analyzer for the
// task graphs in this repository: it executes a computation's DAG
// serially, measures work and span, and reports the inherent and
// burdened parallelism — the speedup bound no machine can beat
// (paper Table III, tool support).
//
// Usage:
//
//	spanview -app fib|sort|uts|tree [-n N] [-cutoff C] [-procs list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"threading/internal/uts"
	"threading/internal/workspan"
)

// leafCost is the synthetic cost charged per unit of leaf work, so
// graph shapes are comparable.
const leafCost = time.Microsecond

func main() {
	var (
		app    = flag.String("app", "fib", "task graph to analyze: fib, sort, uts, tree")
		n      = flag.Int("n", 20, "problem size (fib argument, sort length/1000, tree depth)")
		cutoff = flag.Int("cutoff", 8, "sequential cut-off (fib/sort)")
		procs  = flag.String("procs", "1,2,4,8,16,36,72", "processor counts for the speedup-bound table")
	)
	flag.Parse()

	var report workspan.Report
	switch *app {
	case "fib":
		report = workspan.Profile(workspan.Options{}, func(s workspan.Scope) {
			fibSpan(s, *n, *cutoff)
		})
	case "sort":
		report = workspan.Profile(workspan.Options{}, func(s workspan.Scope) {
			sortSpan(s, *n*1000, *cutoff*1000)
		})
	case "uts":
		p := uts.Small(uint64(*n))
		report = workspan.Profile(workspan.Options{}, func(s workspan.Scope) {
			utsSpan(s, p, p.Root(), 0)
		})
	case "tree":
		report = workspan.Profile(workspan.Options{}, func(s workspan.Scope) {
			treeSpan(s, *n)
		})
	default:
		fmt.Fprintf(os.Stderr, "spanview: unknown app %q\n", *app)
		os.Exit(2)
	}

	fmt.Printf("=== %s(n=%d, cutoff=%d) ===\n%s\n\n", *app, *n, *cutoff, report)
	fmt.Println("speedup bound by processor count:")
	for _, part := range strings.Split(*procs, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || p < 1 {
			continue
		}
		fmt.Printf("  P=%-4d bound %.2fx\n", p, report.SpeedupBound(p))
	}
}

// fibSpan mirrors kernels.FibTask's task structure, charging leafCost
// per recursive call below the cut-off.
func fibSpan(s workspan.Scope, n, cutoff int) {
	if n < 2 {
		s.Charge(leafCost)
		return
	}
	if n <= cutoff {
		s.Charge(time.Duration(fibCalls(n)) * leafCost)
		return
	}
	s.Spawn(func(cs workspan.Scope) { fibSpan(cs, n-1, cutoff) })
	fibSpan(s, n-2, cutoff)
	s.Sync()
}

// fibCalls counts the calls a sequential fib(n) performs.
func fibCalls(n int) int64 {
	if n < 2 {
		return 1
	}
	return 1 + fibCalls(n-1) + fibCalls(n-2)
}

// sortSpan mirrors kernels.SortTask: halves spawn until the cut-off,
// merges charge linear cost.
func sortSpan(s workspan.Scope, n, cutoff int) {
	if n <= cutoff || n < 2 {
		// Sequential sort: n log n cost.
		cost := float64(n)
		if n > 1 {
			cost *= log2(float64(n))
		}
		s.Charge(time.Duration(cost) * leafCost / 4)
		return
	}
	mid := n / 2
	s.Spawn(func(cs workspan.Scope) { sortSpan(cs, mid, cutoff) })
	sortSpan(s, n-mid, cutoff)
	s.Sync()
	s.Charge(time.Duration(n) * leafCost / 4) // the merge is serial
}

func log2(x float64) float64 {
	l := 0.0
	for x > 1 {
		x /= 2
		l++
	}
	return l
}

// utsSpan charges one unit per tree node, spawning per child as the
// UTS benchmark does.
func utsSpan(s workspan.Scope, p uts.Params, id uint64, depth int) {
	s.Charge(leafCost)
	n := p.NumChildren(id, depth)
	for i := 0; i < n; i++ {
		cid := p.Child(id, i)
		s.Spawn(func(cs workspan.Scope) { utsSpan(cs, p, cid, depth+1) })
	}
	s.Sync()
}

// treeSpan is a perfect binary tree of the given depth.
func treeSpan(s workspan.Scope, depth int) {
	if depth == 0 {
		s.Charge(leafCost)
		return
	}
	s.Spawn(func(cs workspan.Scope) { treeSpan(cs, depth-1) })
	treeSpan(s, depth-1)
	s.Sync()
}
