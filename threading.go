// Package threading is a study of threading programming models in Go,
// reproducing "Comparison of Threading Programming Models" (Salehian,
// Liu, Yan; 2017). It provides, from scratch and over goroutines:
//
//   - a fork-join work-sharing runtime in the style of OpenMP
//     (persistent teams, static/dynamic/guided loop schedules,
//     barriers, critical/single/master, explicit tasks with taskwait);
//   - a Cilk-style work-stealing runtime (spawn/sync over lock-free
//     Chase-Lev deques, divide-and-conquer loops, reducers), with a
//     lock-based deque backend modelling the Intel OpenMP task
//     runtime;
//   - a C++11-style layer (Thread/Join, Promise/Future, Async with
//     launch policies, PackagedTask);
//   - six benchmark-ready model configurations (omp_for, omp_task,
//     cilk_for, cilk_spawn, cpp_thread, cpp_async) behind one Model
//     interface;
//   - the paper's qualitative feature comparison (Tables I-III) as
//     queryable data; and
//   - a harness that regenerates each of the paper's performance
//     figures (five kernels and five Rodinia applications).
//
// This root package is the stable public surface: it re-exports the
// pieces a downstream user needs. Internal packages hold the
// implementations.
//
// Every blocking operation has a context-aware form (ParallelForCtx,
// TaskRunCtx, Pool.RunCtx, Future.GetCtx, Device.TargetCtx, ...) with
// cooperative cancellation at chunk/task boundaries, deadline support,
// and structured first-error propagation: a panic inside a parallel
// region surfaces as a *threading.PanicError wrapping the recovered
// value and the panicking goroutine's stack. The legacy forms remain
// as thin wrappers (context.Background, panic on failure).
//
// Quick start:
//
//	m, err := threading.NewModel(threading.OMPFor, runtime.GOMAXPROCS(0))
//	if err != nil { ... }
//	defer m.Close()
//	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
//	defer cancel()
//	if err := m.ParallelForCtx(ctx, len(data), func(lo, hi int) {
//		for i := lo; i < hi; i++ { data[i] *= 2 }
//	}); err != nil {
//		var pe *threading.PanicError
//		switch {
//		case errors.As(err, &pe): // a chunk panicked; pe.Stack has the trace
//		case errors.Is(err, context.DeadlineExceeded): // ran out of time
//		}
//	}
package threading

import (
	"context"
	"io"
	"time"

	"threading/internal/core"
	"threading/internal/deque"
	"threading/internal/forkjoin"
	"threading/internal/futures"
	"threading/internal/harness"
	"threading/internal/models"
	"threading/internal/offload"
	"threading/internal/pipeline"
	"threading/internal/sched"
	"threading/internal/shard"
	"threading/internal/tracez"
	"threading/internal/workspan"
	"threading/internal/worksteal"
)

// PanicError wraps a panic recovered inside a parallel region, task,
// thread, or kernel: Value is the recovered value, Stack the
// panicking goroutine's stack. The context-aware entry points return
// it instead of re-panicking; test with errors.As.
type PanicError = sched.PanicError

// ErrTasksUnsupported is returned (wrapped with the model's name) by
// TaskRunCtx on the pure loop models omp_for and cilk_for; test with
// errors.Is.
var ErrTasksUnsupported = models.ErrTasksUnsupported

// ErrBrokenPromise is returned by Future.Get when the promise was
// dropped without a value.
var ErrBrokenPromise = futures.ErrBrokenPromise

// Model is one threading-model configuration; see internal/models.
type Model = models.Model

// TaskScope is the recursive spawn/join surface of task-capable
// models.
type TaskScope = models.TaskScope

// Model names accepted by NewModel.
const (
	OMPFor    = models.OMPFor
	OMPTask   = models.OMPTask
	CilkFor   = models.CilkFor
	CilkSpawn = models.CilkSpawn
	CPPThread = models.CPPThread
	CPPAsync  = models.CPPAsync
)

// ModelOption configures optional, model-independent construction
// knobs for NewModel; models a knob does not apply to ignore it.
type ModelOption = models.Option

// PartitionerOption is the type of WithPartitioner: a single option
// accepted by both NewModel (as a ModelOption) and NewPool (as a
// PoolOption), so one spelling configures the partitioner everywhere.
type PartitionerOption interface {
	ModelOption
	PoolOption
}

// WithModelPartitioner selects the loop partitioner used by the
// work-stealing models (cilk_for, cilk_spawn).
//
// Deprecated: use WithPartitioner, which is accepted by NewModel and
// NewPool alike.
func WithModelPartitioner(p Partitioner) ModelOption { return models.WithPartitioner(p) }

// Tracer collects per-worker scheduler events (task/chunk spans,
// steals, parks, barrier waits) into fixed-capacity ring buffers; see
// internal/tracez. Attach one with WithTracer, then write its
// Snapshot with WriteTrace and inspect the file with cmd/traceview.
type Tracer = tracez.Tracer

// Trace is an immutable snapshot of a Tracer's rings.
type Trace = tracez.Trace

// NewTracer returns a Tracer whose per-worker rings hold capacity
// events each (rounded up to a power of two; <= 0 picks the default).
func NewTracer(capacity int) *Tracer { return tracez.New(capacity) }

// TracerOption is the type of WithTracer: a single option accepted by
// NewModel, NewPool, and NewTeam, so one spelling attaches a tracer
// to any runtime.
type TracerOption interface {
	ModelOption
	PoolOption
	TeamOption
}

// WithTracer records the runtime's scheduler events into tr — the
// canonical tracer option for NewModel, NewPool, and NewTeam. A nil
// tr leaves tracing disabled at zero cost.
func WithTracer(tr *Tracer) TracerOption {
	return struct {
		ModelOption
		PoolOption
		TeamOption
	}{models.WithTracer(tr), worksteal.WithTracer(tr), forkjoin.WithTracer(tr)}
}

// WithModelTracer records the model runtime's scheduler events into
// tr.
//
// Deprecated: use WithTracer, which is accepted by NewModel, NewPool,
// and NewTeam alike.
func WithModelTracer(tr *Tracer) ModelOption { return models.WithTracer(tr) }

// PinnedOption is the type of WithPinnedWorkers: a single option
// accepted by NewModel, NewPool, and NewTeam, so one spelling pins any
// runtime's workers.
type PinnedOption interface {
	ModelOption
	PoolOption
	TeamOption
}

// WithPinnedWorkers locks the runtime's durable worker goroutines to
// OS threads (runtime.LockOSThread) for the runtime's life: pool
// workers for the work-stealing runtimes, members 1..n-1 for fork-join
// teams (member 0 is the caller's goroutine and is never pinned by the
// team), and every shard's workers for the sharded model forms. Models
// without durable workers (cpp_thread, cpp_async) ignore it.
func WithPinnedWorkers(on bool) PinnedOption {
	return struct {
		ModelOption
		PoolOption
		TeamOption
	}{models.WithPinnedWorkers(on), worksteal.WithPinnedWorkers(on), forkjoin.WithPinnedWorkers(on)}
}

// WriteTrace serializes a trace snapshot to path in the raw JSON
// format cmd/traceview consumes.
func WriteTrace(path string, tr *Trace) error { return tracez.WriteFile(path, tr) }

// NewModel constructs a threading model by name with the given degree
// of parallelism.
func NewModel(name string, threads int, opts ...ModelOption) (Model, error) {
	return models.New(name, threads, opts...)
}

// ModelNames returns all model names (sorted).
func ModelNames() []string { return models.Names() }

// Team is the OpenMP-style fork-join runtime; construct with NewTeam.
type Team = forkjoin.Team

// TeamCtx is a member's handle inside a parallel region.
type TeamCtx = forkjoin.Ctx

// TeamOptions configure a Team.
//
// Deprecated: prefer the functional options (WithSchedule,
// WithCentralBarrier, ...). A TeamOptions literal is itself a
// TeamOption, so existing NewTeam(n, TeamOptions{...}) calls compile
// unchanged.
type TeamOptions = forkjoin.Options

// TeamOption configures a Team at construction.
type TeamOption = forkjoin.Option

// TaskPolicy selects when a Team's explicit task bodies run.
type TaskPolicy = forkjoin.TaskPolicy

// Task policies for WithTaskPolicy.
const (
	TaskDeferred  = forkjoin.TaskDeferred
	TaskImmediate = forkjoin.TaskImmediate
)

// NewTeam creates a fork-join team of n members.
func NewTeam(n int, options ...TeamOption) *Team { return forkjoin.NewTeam(n, options...) }

// WithSchedule sets a team's default work-sharing schedule.
func WithSchedule(s Schedule) TeamOption { return forkjoin.WithSchedule(s) }

// WithCentralBarrier selects the lock-based central barrier (ablation
// against the default sense-reversing barrier).
func WithCentralBarrier() TeamOption { return forkjoin.WithCentralBarrier() }

// WithLockFreeTasks backs a team's explicit tasks with lock-free
// Chase-Lev deques instead of the default lock-based deques.
func WithLockFreeTasks() TeamOption { return forkjoin.WithLockFreeTasks() }

// WithTaskPolicy selects deferred or immediate task execution.
func WithTaskPolicy(p TaskPolicy) TeamOption { return forkjoin.WithTaskPolicy(p) }

// WithSpinBeforeYield sets how many find-work failures a draining
// member tolerates before yielding the processor.
func WithSpinBeforeYield(n int) TeamOption { return forkjoin.WithSpinBeforeYield(n) }

// Schedule is a work-sharing loop schedule for Team loops.
type Schedule = forkjoin.Schedule

// Work-sharing loop schedules for Team loops.
var (
	// Static is the default OpenMP-style static schedule.
	Static = forkjoin.Static
)

// Dynamic returns a dynamic work-sharing schedule with the given
// chunk size.
func Dynamic(chunk int) forkjoin.Schedule { return forkjoin.Dynamic(chunk) }

// Guided returns a guided work-sharing schedule with the given
// minimum chunk size.
func Guided(chunk int) forkjoin.Schedule { return forkjoin.Guided(chunk) }

// Pool is the Cilk-style work-stealing runtime; construct with
// NewPool.
type Pool = worksteal.Pool

// PoolCtx is a task's handle inside the work-stealing scheduler.
type PoolCtx = worksteal.Ctx

// PoolOptions configure a Pool.
//
// Deprecated: prefer the functional options (WithStealBackend,
// WithSpinBeforePark). A PoolOptions literal is itself a PoolOption,
// so existing NewPool(n, PoolOptions{...}) calls compile unchanged.
type PoolOptions = worksteal.Options

// PoolOption configures a Pool at construction.
type PoolOption = worksteal.Option

// DequeKind selects a work-stealing deque implementation for
// WithStealBackend.
type DequeKind = deque.Kind

// Deque kinds for WithStealBackend.
const (
	DequeChaseLev = deque.KindChaseLev
	DequeLocked   = deque.KindLocked
)

// NewPool creates a work-stealing pool of n workers.
func NewPool(n int, options ...PoolOption) *Pool { return worksteal.NewPool(n, options...) }

// WithStealBackend selects the deque implementation workers steal
// from — lock-free Chase-Lev (the Cilk Plus model) or lock-based (the
// Intel OpenMP task runtime model).
func WithStealBackend(k DequeKind) PoolOption { return worksteal.WithDequeKind(k) }

// WithSpinBeforePark sets how many steal failures a worker tolerates
// before parking.
func WithSpinBeforePark(n int) PoolOption { return worksteal.WithSpinBeforePark(n) }

// Partitioner selects how a Pool's ForDAC loops are decomposed.
type Partitioner = worksteal.Partitioner

// Partitioners for WithPartitioner / WithModelPartitioner.
const (
	// PartitionEager recursively halves the iteration space into
	// spawned tasks up front (cilk_for; paper-faithful).
	PartitionEager = worksteal.Eager
	// PartitionLazy splits on demand: a worker forks off half its
	// remaining range only when another worker is hungry.
	PartitionLazy = worksteal.Lazy
)

// WithPartitioner selects how loops are decomposed — the canonical
// partitioner option, accepted by NewModel (work-stealing models) and
// NewPool alike: PartitionEager is the paper-faithful
// divide-and-conquer decomposition, PartitionLazy demand-driven
// splitting.
func WithPartitioner(p Partitioner) PartitionerOption {
	return struct {
		ModelOption
		PoolOption
	}{models.WithPartitioner(p), worksteal.WithPartitioner(p)}
}

// Executor is the uniform submission surface implemented by *Team,
// *Pool, and *Resolver: context-aware parallel loops, chunked
// reductions, detached submissions, and quiesce/close. It is the
// stable abstraction to write against when code must run on any of
// the three runtimes; see internal/shard for the full contract.
type Executor = shard.Executor

// Resolver routes parallel loops, reductions, and submissions across
// a mutable set of shards (each itself an Executor) through a
// pluggable balancer. It implements Executor, so a Resolver can stand
// in anywhere a single runtime does — including as a shard of another
// Resolver. Construct with NewResolver.
type Resolver = shard.Resolver

// ResolverOption configures NewResolver.
type ResolverOption = shard.Option

// NewResolver returns a Resolver routing across the shards given via
// WithShards (at least one is required; the Resolver takes ownership
// and closes them). The default balancer is round-robin.
func NewResolver(opts ...ResolverOption) (*Resolver, error) { return shard.New(opts...) }

// WithShards sets a Resolver's initial shard set.
func WithShards(execs ...Executor) ResolverOption { return shard.WithShards(execs...) }

// Balancer picks which shard receives the next unit of work; see
// internal/shard for the concurrency and positional-index contract.
type Balancer = shard.Balancer

// WithBalancer selects a Resolver's routing balancer.
func WithBalancer(b Balancer) ResolverOption { return shard.WithBalancer(b) }

// Balancer constructors for WithBalancer.
func RoundRobin() Balancer  { return shard.RoundRobin() }  // cycle in order
func Random() Balancer      { return shard.Random() }      // uniform lock-free
func LeastLoaded() Balancer { return shard.LeastLoaded() } // min queued work
func Affinity() Balancer    { return shard.Affinity() }    // submitter-sticky

// ParseBalancer converts a flag-style name (round-robin, random,
// least-loaded, affinity; empty selects round-robin) to a Balancer.
func ParseBalancer(s string) (Balancer, error) { return shard.ParseBalancer(s) }

// ShardStat is one shard's scheduler counters, tagged with its id.
type ShardStat = shard.Stat

// ShardedPrefix is the model-name prefix selecting sharded execution
// from NewModel, e.g. "sharded:cilk_for".
const ShardedPrefix = models.ShardedPrefix

// WithShardCount splits a pooled model's runtime into n shards behind
// a Resolver: 0 disables sharding, a negative value selects
// GOMAXPROCS shards. Models without a persistent runtime ignore it.
func WithShardCount(n int) ModelOption { return models.WithShardCount(n) }

// WithShardBalancer names the balancer routing a sharded model's work
// (see ParseBalancer for the accepted names).
func WithShardBalancer(name string) ModelOption { return models.WithShardBalancer(name) }

// ShardedStats is the extra reporting surface of sharded models,
// obtained by type assertion: per-shard counter snapshots plus the
// sharding configuration.
type ShardedStats = models.ShardedStats

// Thread is a C++11-style thread of execution; see internal/futures.
type Thread = futures.Thread

// NewThread starts fn on a new thread of execution.
func NewThread(fn func()) *Thread { return futures.NewThread(fn) }

// Async runs fn under the given launch policy and returns a future.
func Async[T any](policy futures.Policy, fn func() (T, error)) *futures.Future[T] {
	return futures.Async(policy, fn)
}

// Launch policies for Async.
const (
	LaunchAsync    = futures.LaunchAsync
	LaunchDeferred = futures.LaunchDeferred
)

// Deps declares an explicit task's dependences for TeamCtx.TaskDepend
// (OpenMP depend(in/out) semantics).
type Deps = forkjoin.Deps

// Future is the receiving end of an asynchronous computation.
type Future[T any] = futures.Future[T]

// WhenAll returns a future resolving once every input has resolved,
// carrying all values in order.
func WhenAll[T any](fs ...*Future[T]) *Future[[]T] { return futures.WhenAll(fs...) }

// WhenAny returns a future resolving as soon as any input settles.
func WhenAny[T any](fs ...*Future[T]) *Future[futures.AnyResult[T]] {
	return futures.WhenAny(fs...)
}

// Then attaches a continuation to a future.
func Then[T, U any](f *Future[T], fn func(T) (U, error)) *Future[U] {
	return futures.Then(f, fn)
}

// Pipeline is a TBB-style parallel pipeline; construct with
// NewPipeline and filters AddSerial / AddParallel.
type Pipeline = pipeline.Pipeline

// NewPipeline returns an empty pipeline.
func NewPipeline() *Pipeline { return pipeline.New() }

// Device is a simulated accelerator with a discrete address space;
// see internal/offload.
type Device = offload.Device

// DeviceOptions configure a simulated accelerator.
//
// Deprecated: prefer the functional options (WithUnits, WithLatency).
// A DeviceOptions literal is itself a DeviceOption, so existing
// NewDevice(name, DeviceOptions{...}) calls compile unchanged.
type DeviceOptions = offload.Options

// DeviceOption configures a Device at construction.
type DeviceOption = offload.Option

// NewDevice creates a simulated accelerator for offloading-pattern
// code (target regions, explicit data movement, streams).
func NewDevice(name string, options ...DeviceOption) *Device {
	return offload.NewDevice(name, options...)
}

// WithUnits sets a device's number of compute units.
func WithUnits(n int) DeviceOption { return offload.WithUnits(n) }

// WithLatency sets a device's simulated interconnect latency, added
// to every host<->device copy.
func WithLatency(d time.Duration) DeviceOption { return offload.WithLatency(d) }

// Buffer is a device-resident array in a Device's address space.
type Buffer = offload.Buffer

// Mapping binds a host slice to OpenMP-style map semantics for a
// Device.Target region.
type Mapping = offload.Mapping

// Map directions for Mapping.
const (
	MapTo     = offload.MapTo
	MapFrom   = offload.MapFrom
	MapToFrom = offload.MapToFrom
	MapAlloc  = offload.MapAlloc
)

// SpanScope is the instrumented task surface of the work/span
// analyzer.
type SpanScope = workspan.Scope

// SpanOptions configure a work/span profile run.
type SpanOptions = workspan.Options

// SpanReport is the result of a work/span profile: work (T1), span
// (T-infinity), parallelism, burdened parallelism and speedup bounds.
type SpanReport = workspan.Report

// ProfileSpan executes a task graph serially and returns its DAG
// metrics — a Cilkview-style scalability analysis (Table III's tool
// support for Cilk Plus).
func ProfileSpan(opts SpanOptions, root func(SpanScope)) SpanReport {
	return workspan.Profile(opts, root)
}

// SuiteConfig selects what RunSuite executes; see internal/core.
type SuiteConfig = core.SuiteConfig

// RunSuite regenerates the paper's performance figures, writing
// tables to out.
func RunSuite(cfg SuiteConfig, out io.Writer) ([]*harness.Result, error) {
	return core.RunSuite(cfg, out)
}

// RunSuiteCtx is RunSuite with cooperative cancellation: a canceled
// or expired context aborts the suite at the next measurement
// boundary, returning the completed results alongside the context's
// error.
func RunSuiteCtx(ctx context.Context, cfg SuiteConfig, out io.Writer) ([]*harness.Result, error) {
	return core.RunSuiteCtx(ctx, cfg, out)
}

// FeatureReport writes the paper's qualitative comparison tables
// (1..3; empty selects all) to out.
func FeatureReport(tables []int, out io.Writer) error {
	return core.FeatureReport(tables, out)
}
