// Package threading is a study of threading programming models in Go,
// reproducing "Comparison of Threading Programming Models" (Salehian,
// Liu, Yan; 2017). It provides, from scratch and over goroutines:
//
//   - a fork-join work-sharing runtime in the style of OpenMP
//     (persistent teams, static/dynamic/guided loop schedules,
//     barriers, critical/single/master, explicit tasks with taskwait);
//   - a Cilk-style work-stealing runtime (spawn/sync over lock-free
//     Chase-Lev deques, divide-and-conquer loops, reducers), with a
//     lock-based deque backend modelling the Intel OpenMP task
//     runtime;
//   - a C++11-style layer (Thread/Join, Promise/Future, Async with
//     launch policies, PackagedTask);
//   - six benchmark-ready model configurations (omp_for, omp_task,
//     cilk_for, cilk_spawn, cpp_thread, cpp_async) behind one Model
//     interface;
//   - the paper's qualitative feature comparison (Tables I-III) as
//     queryable data; and
//   - a harness that regenerates each of the paper's performance
//     figures (five kernels and five Rodinia applications).
//
// This root package is the stable public surface: it re-exports the
// pieces a downstream user needs. Internal packages hold the
// implementations.
//
// Quick start:
//
//	m, err := threading.NewModel(threading.OMPFor, runtime.GOMAXPROCS(0))
//	if err != nil { ... }
//	defer m.Close()
//	m.ParallelFor(len(data), func(lo, hi int) {
//		for i := lo; i < hi; i++ { data[i] *= 2 }
//	})
package threading

import (
	"io"

	"threading/internal/core"
	"threading/internal/forkjoin"
	"threading/internal/futures"
	"threading/internal/harness"
	"threading/internal/models"
	"threading/internal/offload"
	"threading/internal/pipeline"
	"threading/internal/workspan"
	"threading/internal/worksteal"
)

// Model is one threading-model configuration; see internal/models.
type Model = models.Model

// TaskScope is the recursive spawn/join surface of task-capable
// models.
type TaskScope = models.TaskScope

// Model names accepted by NewModel.
const (
	OMPFor    = models.OMPFor
	OMPTask   = models.OMPTask
	CilkFor   = models.CilkFor
	CilkSpawn = models.CilkSpawn
	CPPThread = models.CPPThread
	CPPAsync  = models.CPPAsync
)

// NewModel constructs a threading model by name with the given degree
// of parallelism.
func NewModel(name string, threads int) (Model, error) {
	return models.New(name, threads)
}

// ModelNames returns all model names (sorted).
func ModelNames() []string { return models.Names() }

// Team is the OpenMP-style fork-join runtime; construct with NewTeam.
type Team = forkjoin.Team

// TeamCtx is a member's handle inside a parallel region.
type TeamCtx = forkjoin.Ctx

// TeamOptions configure a Team.
type TeamOptions = forkjoin.Options

// NewTeam creates a fork-join team of n members.
func NewTeam(n int, opts TeamOptions) *Team { return forkjoin.NewTeam(n, opts) }

// Work-sharing loop schedules for Team loops.
var (
	// Static is the default OpenMP-style static schedule.
	Static = forkjoin.Static
)

// Dynamic returns a dynamic work-sharing schedule with the given
// chunk size.
func Dynamic(chunk int) forkjoin.Schedule { return forkjoin.Dynamic(chunk) }

// Guided returns a guided work-sharing schedule with the given
// minimum chunk size.
func Guided(chunk int) forkjoin.Schedule { return forkjoin.Guided(chunk) }

// Pool is the Cilk-style work-stealing runtime; construct with
// NewPool.
type Pool = worksteal.Pool

// PoolCtx is a task's handle inside the work-stealing scheduler.
type PoolCtx = worksteal.Ctx

// PoolOptions configure a Pool.
type PoolOptions = worksteal.Options

// NewPool creates a work-stealing pool of n workers.
func NewPool(n int, opts PoolOptions) *Pool { return worksteal.NewPool(n, opts) }

// Thread is a C++11-style thread of execution; see internal/futures.
type Thread = futures.Thread

// NewThread starts fn on a new thread of execution.
func NewThread(fn func()) *Thread { return futures.NewThread(fn) }

// Async runs fn under the given launch policy and returns a future.
func Async[T any](policy futures.Policy, fn func() (T, error)) *futures.Future[T] {
	return futures.Async(policy, fn)
}

// Launch policies for Async.
const (
	LaunchAsync    = futures.LaunchAsync
	LaunchDeferred = futures.LaunchDeferred
)

// Deps declares an explicit task's dependences for TeamCtx.TaskDepend
// (OpenMP depend(in/out) semantics).
type Deps = forkjoin.Deps

// Future is the receiving end of an asynchronous computation.
type Future[T any] = futures.Future[T]

// WhenAll returns a future resolving once every input has resolved,
// carrying all values in order.
func WhenAll[T any](fs ...*Future[T]) *Future[[]T] { return futures.WhenAll(fs...) }

// WhenAny returns a future resolving as soon as any input settles.
func WhenAny[T any](fs ...*Future[T]) *Future[futures.AnyResult[T]] {
	return futures.WhenAny(fs...)
}

// Then attaches a continuation to a future.
func Then[T, U any](f *Future[T], fn func(T) (U, error)) *Future[U] {
	return futures.Then(f, fn)
}

// Pipeline is a TBB-style parallel pipeline; construct with
// NewPipeline and filters AddSerial / AddParallel.
type Pipeline = pipeline.Pipeline

// NewPipeline returns an empty pipeline.
func NewPipeline() *Pipeline { return pipeline.New() }

// Device is a simulated accelerator with a discrete address space;
// see internal/offload.
type Device = offload.Device

// DeviceOptions configure a simulated accelerator.
type DeviceOptions = offload.Options

// NewDevice creates a simulated accelerator for offloading-pattern
// code (target regions, explicit data movement, streams).
func NewDevice(name string, opts DeviceOptions) *Device {
	return offload.NewDevice(name, opts)
}

// Mapping binds a host slice to OpenMP-style map semantics for a
// Device.Target region.
type Mapping = offload.Mapping

// Map directions for Mapping.
const (
	MapTo     = offload.MapTo
	MapFrom   = offload.MapFrom
	MapToFrom = offload.MapToFrom
	MapAlloc  = offload.MapAlloc
)

// SpanScope is the instrumented task surface of the work/span
// analyzer.
type SpanScope = workspan.Scope

// SpanOptions configure a work/span profile run.
type SpanOptions = workspan.Options

// SpanReport is the result of a work/span profile: work (T1), span
// (T-infinity), parallelism, burdened parallelism and speedup bounds.
type SpanReport = workspan.Report

// ProfileSpan executes a task graph serially and returns its DAG
// metrics — a Cilkview-style scalability analysis (Table III's tool
// support for Cilk Plus).
func ProfileSpan(opts SpanOptions, root func(SpanScope)) SpanReport {
	return workspan.Profile(opts, root)
}

// SuiteConfig selects what RunSuite executes; see internal/core.
type SuiteConfig = core.SuiteConfig

// RunSuite regenerates the paper's performance figures, writing
// tables to out.
func RunSuite(cfg SuiteConfig, out io.Writer) ([]*harness.Result, error) {
	return core.RunSuite(cfg, out)
}

// FeatureReport writes the paper's qualitative comparison tables
// (1..3; empty selects all) to out.
func FeatureReport(tables []int, out io.Writer) error {
	return core.FeatureReport(tables, out)
}
