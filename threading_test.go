package threading_test

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"threading"
)

// TestPublicSurface exercises the root package the way a downstream
// user would, touching every re-exported constructor.
func TestPublicSurface(t *testing.T) {
	if len(threading.ModelNames()) != 6 {
		t.Fatalf("ModelNames = %v", threading.ModelNames())
	}

	m, err := threading.NewModel(threading.OMPFor, 2)
	if err != nil {
		t.Fatal(err)
	}
	var total atomic.Int64
	m.ParallelFor(1000, func(lo, hi int) { total.Add(int64(hi - lo)) })
	m.Close()
	if total.Load() != 1000 {
		t.Fatalf("ParallelFor covered %d", total.Load())
	}

	team := threading.NewTeam(2, threading.TeamOptions{})
	var members atomic.Int64
	team.Parallel(func(tc *threading.TeamCtx) {
		members.Add(1)
		tc.For(threading.Dynamic(16), 0, 100, func(i int) {})
		tc.For(threading.Guided(4), 0, 100, func(i int) {})
		tc.For(threading.Static, 0, 100, func(i int) {})
	})
	team.Close()
	if members.Load() != 2 {
		t.Fatalf("team ran %d members", members.Load())
	}

	pool := threading.NewPool(2, threading.PoolOptions{})
	var spawned atomic.Int64
	pool.Run(func(c *threading.PoolCtx) {
		c.Spawn(func(*threading.PoolCtx) { spawned.Add(1) })
		c.Sync()
	})
	pool.Close()
	if spawned.Load() != 1 {
		t.Fatal("pool spawn did not run")
	}

	th := threading.NewThread(func() { spawned.Add(1) })
	th.Join()

	f := threading.Async(threading.LaunchAsync, func() (int, error) { return 5, nil })
	if v, err := f.Get(); err != nil || v != 5 {
		t.Fatalf("Async Get = (%d, %v)", v, err)
	}
	fd := threading.Async(threading.LaunchDeferred, func() (int, error) { return 6, nil })
	if v, _ := fd.Get(); v != 6 {
		t.Fatal("deferred Async broken")
	}

	var sb strings.Builder
	if err := threading.FeatureReport(nil, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "OpenMP") {
		t.Error("feature report empty")
	}

	var out strings.Builder
	results, err := threading.RunSuite(threading.SuiteConfig{
		Experiments: []string{"fig1"},
		Threads:     []int{1},
		Reps:        1,
		Scale:       0.001,
	}, &out)
	if err != nil || len(results) != 1 {
		t.Fatalf("RunSuite: %v, %d results", err, len(results))
	}
}

// TestProfileSpanFacade exercises the work/span analyzer through the
// public facade on a fib-shaped DAG.
func TestProfileSpanFacade(t *testing.T) {
	var build func(s threading.SpanScope, n int)
	build = func(s threading.SpanScope, n int) {
		if n < 2 {
			s.Charge(time.Microsecond)
			return
		}
		s.Spawn(func(cs threading.SpanScope) { build(cs, n-1) })
		build(s, n-2)
		s.Sync()
	}
	r := threading.ProfileSpan(threading.SpanOptions{}, func(s threading.SpanScope) {
		build(s, 12)
	})
	if r.Work <= 0 || r.Span <= 0 || r.Parallelism() <= 1 {
		t.Fatalf("degenerate report: %+v", r)
	}
	if r.Span > r.Work {
		t.Fatal("span exceeds work")
	}
	if b := r.SpeedupBound(4); b > 4 {
		t.Fatalf("bound(4) = %g > 4", b)
	}
}

// TestShardingSurface exercises the sharded-execution re-exports: a
// hand-built Resolver over a Pool and a Team, and a sharded model from
// NewModel with the canonical combined options.
func TestShardingSurface(t *testing.T) {
	var _ threading.Executor = (*threading.Pool)(nil)
	var _ threading.Executor = (*threading.Team)(nil)
	var _ threading.Executor = (*threading.Resolver)(nil)

	for _, mk := range []func() threading.Balancer{
		threading.RoundRobin, threading.Random, threading.LeastLoaded, threading.Affinity,
	} {
		b := mk()
		if _, err := threading.ParseBalancer(b.Name()); err != nil {
			t.Fatalf("ParseBalancer(%q): %v", b.Name(), err)
		}
	}

	res, err := threading.NewResolver(
		threading.WithShards(threading.NewPool(2), threading.NewTeam(2)),
		threading.WithBalancer(threading.LeastLoaded()))
	if err != nil {
		t.Fatal(err)
	}
	var total atomic.Int64
	if err := res.ParallelForCtx(context.Background(), 0, 1000, 0, func(lo, hi int) {
		total.Add(int64(hi - lo))
	}); err != nil {
		t.Fatal(err)
	}
	if total.Load() != 1000 {
		t.Fatalf("resolver covered %d of 1000", total.Load())
	}
	if err := res.Quiesce(); err != nil {
		t.Fatal(err)
	}
	res.Close()

	tr := threading.NewTracer(1 << 10)
	m, err := threading.NewModel(threading.CilkFor, 4,
		threading.WithShardCount(2), threading.WithShardBalancer("round-robin"),
		threading.WithPartitioner(threading.PartitionEager), threading.WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ss, ok := m.(threading.ShardedStats)
	if !ok {
		t.Fatal("sharded model does not expose ShardedStats")
	}
	if ss.NumShards() != 2 {
		t.Fatalf("NumShards = %d", ss.NumShards())
	}
	m.ParallelFor(4096, func(lo, hi int) {})
	if stats := ss.ShardSchedulerStats(); len(stats) != 2 {
		t.Fatalf("ShardSchedulerStats = %d entries", len(stats))
	}

	// The canonical options are accepted by the runtime constructors
	// directly, alongside the deprecated model-only spellings.
	pool := threading.NewPool(1,
		threading.WithPartitioner(threading.PartitionLazy), threading.WithTracer(tr))
	pool.Close()
	team := threading.NewTeam(1, threading.WithTracer(tr))
	team.Close()
	if _, err := threading.NewModel(threading.CilkFor, 1,
		threading.WithModelPartitioner(threading.PartitionEager),
		threading.WithModelTracer(nil)); err != nil {
		t.Fatal(err)
	}
}
