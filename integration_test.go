package threading_test

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"threading"
	"threading/internal/offload"
)

// These integration tests exercise cross-cutting scenarios through
// the public facade: OpenMP-style dependence graphs, TBB-style
// pipelines, offloading with verification against host execution, and
// future combinator graphs — the extension features of the paper's
// Table I beyond plain loop/task parallelism.

func TestIntegrationTaskDependencyStencil(t *testing.T) {
	// A 3-point stencil expressed as a task dependence graph: each
	// cell update depends on its own previous value (out) and reads
	// its neighbors (in). The team must discover the wavefront order.
	team := threading.NewTeam(4, threading.TeamOptions{})
	defer team.Close()

	const cells, steps = 32, 10
	cur := make([]float64, cells)
	for i := range cur {
		cur[i] = float64(i)
	}
	// Sequential reference with double buffering.
	want := make([]float64, cells)
	copy(want, cur)
	tmp := make([]float64, cells)
	for s := 0; s < steps; s++ {
		for i := range want {
			l, r := i, i
			if i > 0 {
				l = i - 1
			}
			if i < cells-1 {
				r = i + 1
			}
			tmp[i] = (want[l] + want[i] + want[r]) / 3
		}
		want, tmp = tmp, want
	}

	// Task-graph version: generations of per-cell tasks; each writes
	// a versioned slot and reads the neighbors' previous slots.
	vals := make([][]float64, steps+1)
	vals[0] = make([]float64, cells)
	copy(vals[0], cur)
	for s := 1; s <= steps; s++ {
		vals[s] = make([]float64, cells)
	}
	team.Parallel(func(tc *threading.TeamCtx) {
		tc.Master(func() {
			for s := 1; s <= steps; s++ {
				for i := 0; i < cells; i++ {
					s, i := s, i
					in := []any{&vals[s-1][i]}
					if i > 0 {
						in = append(in, &vals[s-1][i-1])
					}
					if i < cells-1 {
						in = append(in, &vals[s-1][i+1])
					}
					tc.TaskDepend(threading.Deps{In: in, Out: []any{&vals[s][i]}},
						func(*threading.TeamCtx) {
							l, r := i, i
							if i > 0 {
								l = i - 1
							}
							if i < cells-1 {
								r = i + 1
							}
							vals[s][i] = (vals[s-1][l] + vals[s-1][i] + vals[s-1][r]) / 3
						})
				}
			}
			tc.Taskwait()
		})
	})
	for i := range want {
		if math.Abs(vals[steps][i]-want[i]) > 1e-12 {
			t.Fatalf("cell %d: %g, want %g", i, vals[steps][i], want[i])
		}
	}
}

func TestIntegrationPipelineOverModels(t *testing.T) {
	// A pipeline whose parallel stage internally uses a threading
	// model for data parallelism — composing the paper's parallelism
	// patterns.
	m, err := threading.NewModel(threading.CilkFor, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	p := threading.NewPipeline().
		AddParallel("scale", func(v any) (any, error) {
			vec := v.([]float64)
			m.ParallelFor(len(vec), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					vec[i] *= 2
				}
			})
			return vec, nil
		}).
		AddSerial("sum", func(v any) (any, error) {
			vec := v.([]float64)
			s := 0.0
			for _, x := range vec {
				s += x
			}
			return s, nil
		})

	const frames = 16
	items := make([][]float64, frames)
	for k := range items {
		items[k] = make([]float64, 100)
		for i := range items[k] {
			items[k][i] = float64(k)
		}
	}
	idx := 0
	var sums []float64
	n, err := p.Run(2, 4, func() (any, bool) {
		if idx >= frames {
			return nil, false
		}
		v := items[idx]
		idx++
		return v, true
	}, func(v any) { sums = append(sums, v.(float64)) })
	if err != nil || n != frames {
		t.Fatalf("Run = (%d, %v)", n, err)
	}
	for k, s := range sums {
		if s != float64(k)*2*100 {
			t.Fatalf("frame %d sum = %g, want %g (order preserved?)", k, s, float64(k)*2*100)
		}
	}
}

func TestIntegrationOffloadMatchesHostModel(t *testing.T) {
	// The same matvec computed by a host threading model and by the
	// simulated device must agree exactly.
	const n = 128
	a := make([]float64, n*n)
	x := make([]float64, n)
	for i := range a {
		a[i] = float64(i%13) / 13
	}
	for i := range x {
		x[i] = float64(i%7) / 7
	}

	m, err := threading.NewModel(threading.OMPFor, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	host := make([]float64, n)
	m.ParallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += a[i*n+j] * x[j]
			}
			host[i] = s
		}
	})

	dev := threading.NewDevice("gpu0", threading.DeviceOptions{Units: 2})
	devOut := make([]float64, n)
	dev.Target([]threading.Mapping{
		{Host: a, Dir: threading.MapTo},
		{Host: x, Dir: threading.MapTo},
		{Host: devOut, Dir: threading.MapFrom},
	}, func(bufs []*offload.Buffer) {
		dev.Launch(n, func(i int, v [][]float64) {
			var s float64
			row := v[0][i*n : (i+1)*n]
			for j, aij := range row {
				s += aij * v[1][j]
			}
			v[2][i] = s
		}, bufs[0], bufs[1], bufs[2])
	})
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	for i := range host {
		if math.Abs(devOut[i]-host[i]) > 1e-12 {
			t.Fatalf("row %d: device %g, host %g", i, devOut[i], host[i])
		}
	}
}

func TestIntegrationFutureGraphFanInFanOut(t *testing.T) {
	// Map-reduce over futures: fan out squares, WhenAll join, Then
	// continuation, WhenAny race against a slow path.
	const n = 20
	parts := make([]*threading.Future[int], n)
	for i := 0; i < n; i++ {
		i := i
		parts[i] = threading.Async(threading.LaunchAsync, func() (int, error) {
			return i * i, nil
		})
	}
	total := threading.Then(threading.WhenAll(parts...), func(vs []int) (int, error) {
		s := 0
		for _, v := range vs {
			s += v
		}
		return s, nil
	})
	slow := threading.Async(threading.LaunchDeferred, func() (int, error) {
		return 0, errors.New("never forced")
	})
	res, err := threading.WhenAny(total, slow).Get()
	if err != nil {
		t.Fatal(err)
	}
	want := (n - 1) * n * (2*n - 1) / 6
	if res.Index != 0 || res.Value != want {
		t.Fatalf("res = %+v, want index 0 value %d", res, want)
	}
}

func TestIntegrationSectionsAndSchedules(t *testing.T) {
	team := threading.NewTeam(3, threading.TeamOptions{})
	defer team.Close()
	var a, b, c atomic.Int64
	const n = 9000
	hits := make([]atomic.Int32, n)
	team.Parallel(func(tc *threading.TeamCtx) {
		tc.Sections(
			func() { a.Add(1) },
			func() { b.Add(1) },
			func() { c.Add(1) },
		)
		tc.For(threading.Guided(8), 0, n, func(i int) { hits[i].Add(1) })
	})
	if a.Load() != 1 || b.Load() != 1 || c.Load() != 1 {
		t.Fatalf("sections ran %d/%d/%d times", a.Load(), b.Load(), c.Load())
	}
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("iteration %d ran %d times", i, hits[i].Load())
		}
	}
}
